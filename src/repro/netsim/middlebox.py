"""The programmable on-path middlebox.

This is the device the paper's adversary compromises (the lab gateway).
It forwards packets between a client-side link and a server-side link,
and exposes three actuation surfaces:

* a **filter pipeline** per direction — filters inspect a packet and
  return a verdict (forward / drop / delay by some amount), which is how
  the adversary injects per-request jitter and targeted drops;
* an optional **token-bucket throttle** applied to both directions,
  matching the paper's bandwidth-limitation experiments; and
* a **capture tap** recording every transiting packet for the traffic
  monitor.

Everything is retunable at simulated runtime; the attack state machine
in :mod:`repro.core.adversary` drives these knobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from repro.netsim.capture import CaptureLog, Direction, PacketRecord
from repro.netsim.faults import FaultInjector
from repro.netsim.link import LinkEnd
from repro.netsim.packet import Packet
from repro.netsim.queue import TokenBucket
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog


class PacketAction(enum.Enum):
    """What a filter wants done with a packet."""

    FORWARD = "forward"
    DROP = "drop"
    DELAY = "delay"


@dataclass(frozen=True)
class Verdict:
    """A filter decision.  ``delay`` is only meaningful for DELAY."""

    action: PacketAction
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.action is PacketAction.DELAY and self.delay < 0:
            raise ValueError("delay verdict must carry a non-negative delay")

    @classmethod
    def forward(cls) -> "Verdict":
        return cls(PacketAction.FORWARD)

    @classmethod
    def drop(cls) -> "Verdict":
        return cls(PacketAction.DROP)

    @classmethod
    def delayed(cls, seconds: float) -> "Verdict":
        return cls(PacketAction.DELAY, seconds)


class PacketFilter(Protocol):
    """Adversary-installed per-packet decision logic."""

    def classify(self, packet: Packet, direction: Direction, now: float) -> Verdict:
        """Decide what to do with ``packet`` travelling in ``direction``."""


class _IngressAdapter:
    """Tags arriving packets with the direction they entered from."""

    def __init__(self, middlebox: "Middlebox", direction: Direction) -> None:
        self._middlebox = middlebox
        self._direction = direction

    def on_packet(self, packet: Packet) -> None:
        self._middlebox._ingress(packet, self._direction)


class _ForwardKey:
    """Per-direction batch key for undelayed clean forwards.

    Packets that pass the filter pipeline with no delay verdict, no
    fault effect and no throttle bucket release at the ingress instant;
    back-to-back clean forwards in one direction form a homogeneous run
    the simulator dispatches without per-packet closures.
    """

    __slots__ = ("_middlebox", "_direction")

    def __init__(self, middlebox: "Middlebox", direction: Direction) -> None:
        self._middlebox = middlebox
        self._direction = direction

    def deliver(self, packet: Packet) -> None:
        self._middlebox._forward(packet, self._direction)


class Middlebox:
    """Forwards between two links, applying adversary policy."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "gateway",
        trace: Optional[TraceLog] = None,
    ) -> None:
        self._sim = sim
        self.name = name
        self._trace = trace
        self.capture = CaptureLog()
        self._filters: Dict[Direction, List[PacketFilter]] = {
            Direction.CLIENT_TO_SERVER: [],
            Direction.SERVER_TO_CLIENT: [],
        }
        self._throttle: Dict[Direction, Optional[TokenBucket]] = {
            Direction.CLIENT_TO_SERVER: None,
            Direction.SERVER_TO_CLIENT: None,
        }
        self._egress: Dict[Direction, Optional[LinkEnd]] = {
            Direction.CLIENT_TO_SERVER: None,
            Direction.SERVER_TO_CLIENT: None,
        }
        # Chaos layer (repro.netsim.faults): environmental impairments
        # evaluated before the adversary's filter pipeline.
        self._faults: Dict[Direction, Optional[FaultInjector]] = {
            Direction.CLIENT_TO_SERVER: None,
            Direction.SERVER_TO_CLIENT: None,
        }
        self.forwarded = 0
        self.dropped = 0
        self.fault_dropped = 0
        self._forward_keys: Dict[Direction, _ForwardKey] = {
            direction: _ForwardKey(self, direction)
            for direction in Direction
        }

    # Wiring -------------------------------------------------------------

    def attach_client_side(self, end: LinkEnd) -> None:
        """Connect the link leading to the client."""
        end.attach(_IngressAdapter(self, Direction.CLIENT_TO_SERVER))
        self._egress[Direction.SERVER_TO_CLIENT] = end

    def attach_server_side(self, end: LinkEnd) -> None:
        """Connect the link leading to the server."""
        end.attach(_IngressAdapter(self, Direction.SERVER_TO_CLIENT))
        self._egress[Direction.CLIENT_TO_SERVER] = end

    # Policy knobs ---------------------------------------------------------

    def add_filter(self, direction: Direction, packet_filter: PacketFilter) -> None:
        """Install a filter at the end of the pipeline for ``direction``."""
        self._filters[direction].append(packet_filter)

    def remove_filter(self, direction: Direction, packet_filter: PacketFilter) -> None:
        """Remove a previously installed filter (ValueError if absent)."""
        self._filters[direction].remove(packet_filter)

    def clear_filters(self, direction: Optional[Direction] = None) -> None:
        """Drop all filters, optionally only for one direction."""
        directions = [direction] if direction else list(Direction)
        for current in directions:
            self._filters[current].clear()

    def install_faults(
        self, direction: Direction, injector: Optional[FaultInjector]
    ) -> None:
        """Bind (or clear, with None) a chaos-layer fault injector.

        Faults act before the filter pipeline — an environmental drop
        happens whether or not the adversary wanted the packet — and
        support effects a :class:`Verdict` cannot express (duplication).
        """
        self._faults[direction] = injector

    def set_bandwidth_limit(
        self, rate_bits_per_second: Optional[float], burst_bytes: int = 64 * 1024
    ) -> None:
        """Throttle both directions (the paper limits both), or lift the
        limit entirely with ``None``."""
        for direction in Direction:
            if rate_bits_per_second is None:
                self._throttle[direction] = None
            else:
                bucket = TokenBucket(rate_bits_per_second, burst_bytes)
                bucket.consume_at(0, self._sim.now)  # sync refill clock
                self._throttle[direction] = bucket

    # Forwarding -----------------------------------------------------------

    def _ingress(self, packet: Packet, direction: Direction) -> None:
        now = self._sim.now
        fault = None
        injector = self._faults[direction]
        if injector is not None:
            fault = injector.effect(now)
            if fault.drop:
                # The tap records the packet (it did reach the box) but
                # flags it undelivered, like an adversary drop.
                self.capture.append(
                    PacketRecord.from_packet(
                        now, direction, packet, dropped=True
                    )
                )
                self.dropped += 1
                self.fault_dropped += 1
                self._record(
                    "middlebox.drop.fault", packet, direction,
                    fault=fault.reason,
                )
                return
            if not fault.any:
                fault = None
        verdict = self._evaluate_filters(packet, direction, now)
        dropped = verdict.action is PacketAction.DROP
        self.capture.append(
            PacketRecord.from_packet(now, direction, packet, dropped=dropped)
        )
        if dropped:
            self.dropped += 1
            self._record("middlebox.drop", packet, direction)
            return
        release_delay = verdict.delay if verdict.action is PacketAction.DELAY else 0.0
        if fault is not None:
            release_delay += fault.extra_delay
        release_time = now + release_delay
        bucket = self._throttle[direction]
        if bucket is not None:
            extra = bucket.delay_until_conformant(packet.wire_size, release_time)
            bucket.consume_at(packet.wire_size, release_time + extra)
            release_time += extra
        if (
            self._sim.batching
            and release_delay == 0.0
            and bucket is None
            and fault is None
        ):
            # Undelayed clean forward: batchable.  Any adversary delay,
            # throttle or fault keeps the per-packet closure path.
            self._sim.schedule_batch_at(
                release_time, self._forward_keys[direction], packet
            )
            return
        self._sim.schedule_at(
            release_time, lambda: self._forward(packet, direction)
        )
        if fault is not None and fault.duplicate:
            self._sim.schedule_at(
                release_time, lambda: self._forward(packet, direction)
            )
            self._record("middlebox.dup", packet, direction)
        if release_delay > 0:
            self._record(
                "middlebox.delay", packet, direction, delay=release_delay
            )

    def _evaluate_filters(
        self, packet: Packet, direction: Direction, now: float
    ) -> Verdict:
        total_delay = 0.0
        for packet_filter in self._filters[direction]:
            verdict = packet_filter.classify(packet, direction, now)
            if verdict.action is PacketAction.DROP:
                return verdict
            if verdict.action is PacketAction.DELAY:
                total_delay += verdict.delay
        if total_delay > 0:
            return Verdict.delayed(total_delay)
        return Verdict.forward()

    def _forward(self, packet: Packet, direction: Direction) -> None:
        egress = self._egress[direction]
        if egress is None:
            raise RuntimeError(
                f"middlebox {self.name!r}: egress for {direction} not wired"
            )
        self.forwarded += 1
        egress.send(packet)

    def _record(self, category: str, packet: Packet, direction: Direction, **extra) -> None:
        if self._trace is not None:
            self._trace.record(
                self._sim.now,
                category,
                middlebox=self.name,
                direction=direction.value,
                packet_id=packet.packet_id,
                size=packet.wire_size,
                **extra,
            )

    def __repr__(self) -> str:
        return (
            f"Middlebox({self.name!r}, forwarded={self.forwarded}, "
            f"dropped={self.dropped})"
        )
