"""Topology builders.

The paper's testbed is a three-node path: client hosts behind a lab
gateway (the compromised middlebox) talking to the web server.
:func:`build_adversary_path` wires that up and returns a
:class:`PathTopology` bundle the higher layers build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.faults import FaultSchedule
from repro.netsim.link import Link, LinkConfig
from repro.netsim.middlebox import Middlebox
from repro.netsim.node import Host
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog


@dataclass
class PathTopology:
    """A wired client — middlebox — server path."""

    sim: Simulator
    trace: TraceLog
    rng: RandomStreams
    client: Host
    server: Host
    middlebox: Middlebox
    client_link: Link
    server_link: Link


def build_adversary_path(
    sim: Optional[Simulator] = None,
    seed: int = 0,
    client_link_config: Optional[LinkConfig] = None,
    server_link_config: Optional[LinkConfig] = None,
    trace: Optional[TraceLog] = None,
    client_faults: Optional[FaultSchedule] = None,
    server_faults: Optional[FaultSchedule] = None,
) -> PathTopology:
    """Build the canonical testbed topology.

    Args:
        sim: an existing simulator, or None to create a fresh one.
        seed: master seed for all random substreams.
        client_link_config: client↔gateway link parameters (LAN defaults).
        server_link_config: gateway↔server link parameters (WAN defaults).
        trace: shared trace log, or None to create one.
        client_faults: chaos-layer schedule for the client↔gateway link.
        server_faults: chaos-layer schedule for the gateway↔server link.

    Returns:
        A fully wired :class:`PathTopology`; the client and server hosts
        still need transport stacks bound on top.
    """
    sim = sim or Simulator()
    trace = trace or TraceLog()
    rng = RandomStreams(seed)

    if client_link_config is None:
        # Campus LAN hop: fast and short.
        client_link_config = LinkConfig(propagation_delay=0.0005)
    if server_link_config is None:
        # Gateway to web server across the Internet; a touch of ambient
        # loss so baseline TCP retransmissions are non-zero (the
        # reference point of Table I's "increase in retransmissions").
        server_link_config = LinkConfig(
            propagation_delay=0.015, loss_rate=0.001
        )

    client = Host(sim, "client", trace=trace)
    server = Host(sim, "server", trace=trace)
    middlebox = Middlebox(sim, "gateway", trace=trace)

    client_link = Link(sim, client_link_config, rng=rng, trace=trace,
                       name="client-link", faults=client_faults)
    server_link = Link(sim, server_link_config, rng=rng, trace=trace,
                       name="server-link", faults=server_faults)

    client.attach_link(client_link.a)
    middlebox.attach_client_side(client_link.b)
    middlebox.attach_server_side(server_link.a)
    server.attach_link(server_link.b)

    return PathTopology(
        sim=sim,
        trace=trace,
        rng=rng,
        client=client,
        server=server,
        middlebox=middlebox,
        client_link=client_link,
        server_link=server_link,
    )
