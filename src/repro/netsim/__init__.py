"""Network simulation substrate.

Models the wire between the client and the server: full-duplex links
with propagation delay, optional jitter, finite bandwidth (serialization
delay plus a drop-tail queue) and random loss; hosts that bind protocol
stacks; and — central to the paper — a programmable on-path
**middlebox** with a packet-capture tap and a filter pipeline that the
adversary uses to delay, throttle and drop traffic.
"""

from repro.netsim.address import Endpoint
from repro.netsim.capture import CaptureLog, Direction, PacketRecord
from repro.netsim.faults import (
    BandwidthDip,
    DelaySpike,
    Duplication,
    FaultEffect,
    FaultInjector,
    FaultSchedule,
    GilbertElliottLoss,
    Outage,
    ReorderWindow,
    flaps,
)
from repro.netsim.link import Link, LinkConfig, LinkEnd
from repro.netsim.middlebox import (
    Middlebox,
    PacketAction,
    PacketFilter,
    Verdict,
)
from repro.netsim.node import Host, PacketHandler
from repro.netsim.packet import IP_HEADER_BYTES, TCP_HEADER_BYTES, Packet
from repro.netsim.queue import DropTailQueue, TokenBucket
from repro.netsim.topology import PathTopology, build_adversary_path

__all__ = [
    "BandwidthDip",
    "CaptureLog",
    "DelaySpike",
    "Direction",
    "DropTailQueue",
    "Duplication",
    "Endpoint",
    "FaultEffect",
    "FaultInjector",
    "FaultSchedule",
    "GilbertElliottLoss",
    "Host",
    "IP_HEADER_BYTES",
    "Link",
    "LinkConfig",
    "LinkEnd",
    "Middlebox",
    "Outage",
    "Packet",
    "PacketAction",
    "PacketFilter",
    "PacketHandler",
    "PacketRecord",
    "PathTopology",
    "ReorderWindow",
    "TCP_HEADER_BYTES",
    "TokenBucket",
    "Verdict",
    "build_adversary_path",
    "flaps",
]
