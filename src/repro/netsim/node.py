"""Hosts: the nodes that terminate links and own protocol stacks."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.netsim.address import Endpoint
from repro.netsim.link import LinkEnd
from repro.netsim.packet import Packet
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog


class PacketHandler(Protocol):
    """Anything that can receive a packet from a link end."""

    def on_packet(self, packet: Packet) -> None:
        """Handle one arriving packet."""


class Host:
    """A network host with one attached link end and a port demux.

    Transport endpoints (TCP connections / listeners) register a
    receiver callable per local port; arriving packets are dispatched by
    destination port.  Packets for unknown ports are counted and
    dropped — the simulated equivalent of a RST-less ignore.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self._sim = sim
        self.name = name
        self._trace = trace
        self._link_end: Optional[LinkEnd] = None
        self._receivers: Dict[int, Callable[[Packet], None]] = {}
        self.unrouted_packets = 0

    @property
    def sim(self) -> Simulator:
        return self._sim

    def attach_link(self, end: LinkEnd) -> None:
        """Connect this host to a link end (one per host in this model)."""
        if self._link_end is not None:
            raise RuntimeError(f"host {self.name!r} already attached to a link")
        self._link_end = end
        end.attach(self)

    def endpoint(self, port: int) -> Endpoint:
        """An :class:`Endpoint` naming this host at ``port``."""
        return Endpoint(self.name, port)

    def bind(self, port: int, receiver: Callable[[Packet], None]) -> None:
        """Register a transport receiver for a local port.

        Raises:
            RuntimeError: if the port is already bound.
        """
        if port in self._receivers:
            raise RuntimeError(f"port {port} already bound on host {self.name!r}")
        self._receivers[port] = receiver

    def unbind(self, port: int) -> None:
        """Release a bound port; unknown ports are ignored."""
        self._receivers.pop(port, None)

    def send(self, packet: Packet) -> None:
        """Transmit a packet onto the attached link."""
        if self._link_end is None:
            raise RuntimeError(f"host {self.name!r} has no attached link")
        packet.created_at = self._sim.now
        self._link_end.send(packet)

    def on_packet(self, packet: Packet) -> None:
        """Link-end delivery entry point: dispatch by destination port."""
        receiver = self._receivers.get(packet.dst.port)
        if receiver is None:
            self.unrouted_packets += 1
            if self._trace is not None:
                self._trace.record(
                    self._sim.now,
                    "host.unrouted",
                    host=self.name,
                    dst=str(packet.dst),
                )
            return
        receiver(packet)

    def __repr__(self) -> str:
        return f"Host({self.name!r}, ports={sorted(self._receivers)})"
