"""Capture persistence: save and reload middlebox captures.

The paper's adversary captured live traffic with tshark and analyzed it
offline with Python scripts.  This module provides the equivalent
workflow for the simulated gateway: a :class:`CaptureLog` serializes to
a JSON-lines trace file (one packet record per line, header fields
only — exactly what an on-path observer keeps) and loads back for
offline analysis, so experiments can be split into capture and analysis
phases or traces shared between machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator, Union

from repro.netsim.capture import CaptureLog, Direction, PacketRecord

#: Format marker written as the first line.
TRACE_HEADER = {"format": "repro-capture", "version": 1}


def _record_to_dict(record: PacketRecord) -> dict:
    return {
        "t": record.time,
        "dir": record.direction.value,
        "id": record.packet_id,
        "wire": record.wire_size,
        "payload": record.payload_bytes,
        "flags": list(record.flags),
        "seq": record.seq,
        "ack": record.ack,
        "tls": list(record.tls_content_types),
        "tls_len": list(record.tls_record_lengths),
        "dropped": record.dropped_by_adversary,
    }


def _record_from_dict(data: dict) -> PacketRecord:
    return PacketRecord(
        time=float(data["t"]),
        direction=Direction(data["dir"]),
        packet_id=int(data["id"]),
        wire_size=int(data["wire"]),
        payload_bytes=int(data["payload"]),
        flags=tuple(data.get("flags", ())),
        seq=int(data.get("seq", 0)),
        ack=int(data.get("ack", 0)),
        tls_content_types=tuple(int(ct) for ct in data.get("tls", ())),
        tls_record_lengths=tuple(int(n) for n in data.get("tls_len", ())),
        dropped_by_adversary=bool(data.get("dropped", False)),
    )


def save_capture(capture: CaptureLog, path: Union[str, Path]) -> int:
    """Write a capture to a JSON-lines trace file.

    Returns the number of packet records written.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(TRACE_HEADER) + "\n")
        count = 0
        for record in capture:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
    return count


def load_capture(path: Union[str, Path]) -> CaptureLog:
    """Read a trace file back into a :class:`CaptureLog`.

    Raises:
        ValueError: when the file is not a repro capture trace or its
            version is unsupported.
    """
    path = Path(path)
    capture = CaptureLog()
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != "repro-capture":
            raise ValueError(f"{path}: not a repro capture trace")
        if header.get("version") != 1:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}"
            )
        for line in handle:
            line = line.strip()
            if line:
                capture.append(_record_from_dict(json.loads(line)))
    return capture
