"""Packet capture at the middlebox — the adversary's eyes.

Mirrors what the paper's gateway saw with tshark: for every transiting
packet, its timestamp, direction, wire size, the *unencrypted* TCP
header fields, and the TLS record content types (also sent in the
clear).  Payload plaintext is never exposed; the estimator works purely
from these records, like the paper's
``ssl.record.content_type==23`` display filter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple

from repro.netsim.packet import Packet


class Direction(enum.Enum):
    """Which way a packet was travelling through the middlebox."""

    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"

    def opposite(self) -> "Direction":
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER


def _segment_field(segment: Any, name: str, default: Any) -> Any:
    return getattr(segment, name, default) if segment is not None else default


@dataclass(frozen=True)
class PacketRecord:
    """One captured packet, as visible to an on-path observer."""

    time: float
    direction: Direction
    packet_id: int
    wire_size: int
    payload_bytes: int
    flags: Tuple[str, ...]
    seq: int
    ack: int
    tls_content_types: Tuple[int, ...]
    #: Wire length of each TLS record *starting* in this packet,
    #: aligned with ``tls_content_types``.  The 5-byte record header
    #: travels in the clear, so an on-path observer reads the length
    #: field as freely as the content type — this is the raw material
    #: of the :mod:`repro.infer` feature extractor and of the padding
    #: regression assertions.
    tls_record_lengths: Tuple[int, ...] = ()
    dropped_by_adversary: bool = False

    @property
    def is_application_data(self) -> bool:
        """True when the packet carries TLS application data (type 23)."""
        return 23 in self.tls_content_types

    @property
    def is_application_stream(self) -> bool:
        """True for packets belonging to the application-data stream.

        A TLS record spans multiple TCP segments; only the first
        carries the (cleartext) record header.  Continuation packets
        expose no content type, but an observer summing a burst's bytes
        must include them: any non-empty packet that does not start a
        *non*-application record counts.
        """
        if self.payload_bytes <= 0:
            return False
        return all(ct == 23 for ct in self.tls_content_types)

    @classmethod
    def from_packet(
        cls,
        time: float,
        direction: Direction,
        packet: Packet,
        dropped: bool = False,
    ) -> "PacketRecord":
        """Build a record from a live packet (headers only)."""
        segment = packet.segment
        records = _segment_field(segment, "tls_records", ()) or ()
        content_types = tuple(
            int(getattr(rec, "content_type", 0)) for rec in records
        )
        record_lengths = tuple(
            int(getattr(rec, "wire_length", 0)) for rec in records
        )
        return cls(
            time=time,
            direction=direction,
            packet_id=packet.packet_id,
            wire_size=packet.wire_size,
            payload_bytes=packet.payload_bytes,
            flags=tuple(sorted(_segment_field(segment, "flags", ()) or ())),
            seq=int(_segment_field(segment, "seq", 0)),
            ack=int(_segment_field(segment, "ack", 0)),
            tls_content_types=content_types,
            tls_record_lengths=record_lengths,
            dropped_by_adversary=dropped,
        )


class CaptureLog:
    """An append-only list of :class:`PacketRecord` with query helpers."""

    def __init__(self) -> None:
        self._records: List[PacketRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def append(self, record: PacketRecord) -> None:
        self._records.append(record)

    def in_direction(
        self, direction: Direction, include_dropped: bool = False
    ) -> List[PacketRecord]:
        """Records for one direction, excluding adversary-dropped packets
        by default (they never reached the far side)."""
        return [
            record
            for record in self._records
            if record.direction is direction
            and (include_dropped or not record.dropped_by_adversary)
        ]

    def application_data(
        self, direction: Optional[Direction] = None
    ) -> List[PacketRecord]:
        """TLS application-data records (the ``content_type==23`` filter)."""
        return [
            record
            for record in self._records
            if record.is_application_data
            and not record.dropped_by_adversary
            and (direction is None or record.direction is direction)
        ]

    def record_length_sequence(
        self, direction: Direction
    ) -> List[Tuple[float, int]]:
        """(time, wire length) of every observed application-data record.

        The cleartext record headers make each record's length visible
        to the on-path observer the moment its first byte transits —
        the input of :func:`repro.infer.features.capture_record_sequence`
        and of the padding regression assertions.
        """
        sequence: List[Tuple[float, int]] = []
        for record in self.in_direction(direction):
            for content_type, wire_length in zip(
                record.tls_content_types, record.tls_record_lengths
            ):
                if content_type == 23:
                    sequence.append((record.time, wire_length))
        return sequence

    def since(self, time: float) -> "CaptureLog":
        """A new log holding only records at or after ``time``."""
        clipped = CaptureLog()
        clipped._records = [r for r in self._records if r.time >= time]
        return clipped

    def clear(self) -> None:
        self._records.clear()
