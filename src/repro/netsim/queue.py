"""Queueing primitives: drop-tail buffers and token buckets.

The drop-tail queue models a link's transmit buffer (loss under
congestion).  The token bucket implements the adversary's bandwidth
throttle — the same abstraction ``tc``'s ``tbf`` qdisc provides on the
paper's gateway.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from repro.simkernel.units import bandwidth_to_bytes_per_second

T = TypeVar("T")


class DropTailQueue(Generic[T]):
    """A bounded FIFO that drops arrivals when full."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._items: Deque[T] = deque()
        self.capacity = capacity
        self.drops = 0
        self.enqueues = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> bool:
        """Enqueue ``item``; returns False (and counts a drop) when full."""
        if self.full:
            self.drops += 1
            return False
        self._items.append(item)
        self.enqueues += 1
        return True

    def pop(self) -> Optional[T]:
        """Dequeue the oldest item, or None when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def clear(self) -> None:
        self._items.clear()


class TokenBucket:
    """A byte-based token bucket rate limiter.

    Tokens accrue continuously at ``rate_bits_per_second``; a packet of
    ``n`` bytes conforms when at least ``n`` tokens are available.  When
    it does not conform, :meth:`delay_until_conformant` reports how long
    the holder must wait — the middlebox uses that to schedule delayed
    forwarding rather than dropping.
    """

    def __init__(
        self,
        rate_bits_per_second: float,
        burst_bytes: int = 64 * 1024,
    ) -> None:
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self._rate_bytes = bandwidth_to_bytes_per_second(rate_bits_per_second)
        self._burst = float(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last_update = 0.0

    @property
    def rate_bits_per_second(self) -> float:
        return self._rate_bytes * 8.0

    def set_rate(self, rate_bits_per_second: float, now: float) -> None:
        """Retune the bucket rate mid-simulation (adversary knob)."""
        self._refill(now)
        self._rate_bytes = bandwidth_to_bytes_per_second(rate_bits_per_second)

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_update
        if elapsed > 0:
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate_bytes)
            self._last_update = now

    def try_consume(self, size_bytes: int, now: float) -> bool:
        """Consume ``size_bytes`` tokens if available."""
        self._refill(now)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    def delay_until_conformant(self, size_bytes: int, now: float) -> float:
        """Seconds until a packet of ``size_bytes`` would conform.

        Returns 0.0 when it conforms right now.  The caller is expected
        to consume the tokens at the conformance time via
        :meth:`consume_at`.
        """
        self._refill(now)
        deficit = size_bytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self._rate_bytes

    def consume_at(self, size_bytes: int, when: float) -> None:
        """Unconditionally consume tokens at time ``when`` (may go negative
        transiently when callers pre-reserved with
        :meth:`delay_until_conformant`)."""
        self._refill(when)
        self._tokens -= size_bytes
