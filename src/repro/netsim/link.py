"""Full-duplex point-to-point links.

Each direction has its own serialization pipeline: packets queue in a
drop-tail transmit buffer, are clocked out at the link rate, then
experience propagation delay plus (optionally) random jitter and random
loss.  Delivery order is FIFO per direction unless ``reorder_allowed``
is set — real networks reorder under jitter, but the paper's adversary
injects its jitter at the middlebox, so links default to in-order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.faults import FaultEffect, FaultInjector, FaultSchedule
from repro.netsim.packet import Packet
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.simkernel.units import MBPS


@dataclass
class LinkConfig:
    """Static parameters of one link.

    Attributes:
        bandwidth_bps: link rate in bits per second.
        propagation_delay: one-way latency in seconds.
        jitter: maximum extra random delay per packet, in seconds
            (uniform in ``[0, jitter]``); 0 disables jitter.
        loss_rate: independent per-packet drop probability in ``[0, 1)``.
        queue_capacity: transmit buffer size in packets.
    """

    bandwidth_bps: float = 1000 * MBPS
    propagation_delay: float = 0.005
    jitter: float = 0.0
    loss_rate: float = 0.0
    queue_capacity: int = 1000

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError("loss rate must be in [0, 1)")


class LinkEnd:
    """One end of a link; nodes hold this and call :meth:`send`."""

    def __init__(self, link: "Link", index: int) -> None:
        self._link = link
        self._index = index
        self.handler = None  # PacketHandler, attached by the node

    def attach(self, handler) -> None:
        """Bind the node (or middlebox) that receives from this end."""
        self.handler = handler

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` toward the opposite end."""
        self._link._transmit(packet, from_index=self._index)

    def deliver(self, packet: Packet) -> None:
        """Batch-dispatch hook: hand an arrived packet to the handler.

        The link end doubles as the direction's batch key — clean
        deliveries are scheduled as ``(end, packet)`` pairs, so
        back-to-back arrivals on one direction form a homogeneous run
        the simulator can execute without per-event closures.
        """
        self._link._deliver(self, packet)

    @property
    def link(self) -> "Link":
        return self._link


class _DirectionState:
    """Per-direction serialization state."""

    __slots__ = (
        "busy_until", "last_arrival", "queued", "sent", "dropped",
        "fault_dropped", "duplicated",
    )

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.last_arrival = 0.0
        self.queued = 0
        self.sent = 0
        self.dropped = 0
        self.fault_dropped = 0
        self.duplicated = 0


class Link:
    """A bidirectional link between two :class:`LinkEnd` holders."""

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        rng: Optional[RandomStreams] = None,
        trace: Optional[TraceLog] = None,
        name: str = "link",
        reorder_allowed: bool = False,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if config.loss_rate > 0 and rng is None:
            raise ValueError(
                f"link {name!r}: loss_rate={config.loss_rate} requires an "
                "rng — without one the link would silently never drop"
            )
        if faults and rng is None:
            raise ValueError(
                f"link {name!r}: a FaultSchedule requires an rng"
            )
        self._sim = sim
        self.config = config
        self._rng = rng
        self._trace = trace
        self.name = name
        self.reorder_allowed = reorder_allowed
        self.a = LinkEnd(self, 0)
        self.b = LinkEnd(self, 1)
        self._directions = (_DirectionState(), _DirectionState())
        # Chaos layer: one independent fault realization per direction
        # (see repro.netsim.faults).  None ⇒ the packet path is exactly
        # the pre-fault-layer code path.
        self._fault_injectors: Optional[tuple] = None
        if faults:
            self._fault_injectors = (
                faults.bind(rng, f"{name}.faults.ab"),
                faults.bind(rng, f"{name}.faults.ba"),
            )
        # Hoisted per-packet constants: dividing by a precomputed
        # bytes-per-second value is bit-identical to transmission_delay()
        # (which computes size / (bps / 8.0) on every call).
        self._bytes_per_second = config.bandwidth_bps / 8.0

    def _jitter_draw(self) -> float:
        if self.config.jitter <= 0 or self._rng is None:
            return 0.0
        return self._rng.uniform(f"{self.name}.jitter", 0.0, self.config.jitter)

    def _loss_draw(self) -> bool:
        if self.config.loss_rate <= 0 or self._rng is None:
            return False
        return (
            self._rng.stream(f"{self.name}.loss").random() < self.config.loss_rate
        )

    def _transmit(self, packet: Packet, from_index: int) -> None:
        direction = self._directions[from_index]
        now = self._sim.now
        busy_until = direction.busy_until

        # Chaos layer: consult the direction's fault injector before the
        # intrinsic loss/queue model (an outage beats a clean queue).
        effect: Optional[FaultEffect] = None
        if self._fault_injectors is not None:
            effect = self._fault_injectors[from_index].effect(now)
            if effect.drop:
                direction.dropped += 1
                direction.fault_dropped += 1
                self._record(
                    "link.drop.fault", packet, from_index, fault=effect.reason
                )
                return
            if not effect.any:
                effect = None

        # Transmit-buffer occupancy model: packets whose serialization
        # has not started yet count against the queue capacity.
        backlog_time = busy_until - now
        serialization = packet.wire_size / self._bytes_per_second
        if effect is not None and effect.capacity_factor != 1.0:
            serialization /= effect.capacity_factor
        backlog_packets = (
            int(backlog_time / serialization)
            if backlog_time > 0.0 and serialization > 0
            else 0
        )
        if backlog_packets >= self.config.queue_capacity:
            direction.dropped += 1
            self._record("link.drop.queue", packet, from_index)
            return

        if self._loss_draw():
            direction.dropped += 1
            self._record("link.drop.loss", packet, from_index)
            return

        start = now if now > busy_until else busy_until
        busy_until = start + serialization
        direction.busy_until = busy_until
        arrival = busy_until + self.config.propagation_delay + self._jitter_draw()
        allow_reorder = self.reorder_allowed
        if effect is not None:
            arrival += effect.extra_delay
            allow_reorder = allow_reorder or effect.allow_reorder
        if not allow_reorder and arrival < direction.last_arrival:
            arrival = direction.last_arrival
        if arrival > direction.last_arrival:
            direction.last_arrival = arrival
        direction.sent += 1

        to_end = self.b if from_index == 0 else self.a
        sim = self._sim
        if sim.batching and effect is None and self.config.jitter <= 0:
            # Clean fixed-delay delivery: batchable (the common case).
            # Fault effects and jitter keep the closure path so the
            # heterogeneous conditions stay on the audited scalar code.
            sim.schedule_batch_at(arrival, to_end, packet)
        else:
            sim.schedule_at(arrival, lambda: self._deliver(to_end, packet))
        if effect is not None and effect.duplicate:
            # A duplicated packet follows its original back-to-back.
            dup_arrival = arrival + serialization
            if not allow_reorder and dup_arrival < direction.last_arrival:
                dup_arrival = direction.last_arrival
            if dup_arrival > direction.last_arrival:
                direction.last_arrival = dup_arrival
            direction.duplicated += 1
            self._sim.schedule_at(
                dup_arrival, lambda: self._deliver(to_end, packet)
            )
            self._record("link.dup", packet, from_index, arrival=dup_arrival)
        trace = self._trace
        if trace is not None:
            trace.record(
                now,
                "link.send",
                link=self.name,
                direction=from_index,
                packet_id=packet.packet_id,
                size=packet.wire_size,
                arrival=arrival,
            )

    def _deliver(self, end: LinkEnd, packet: Packet) -> None:
        if end.handler is None:
            raise RuntimeError(
                f"link {self.name!r}: no handler attached at receiving end"
            )
        end.handler.on_packet(packet)

    def _record(self, category: str, packet: Packet, from_index: int, **extra) -> None:
        if self._trace is not None:
            self._trace.record(
                self._sim.now,
                category,
                link=self.name,
                direction=from_index,
                packet_id=packet.packet_id,
                size=packet.wire_size,
                **extra,
            )

    def stats(self, from_index: int) -> dict:
        """Counters for one direction (0 = a→b, 1 = b→a)."""
        direction = self._directions[from_index]
        return {
            "sent": direction.sent,
            "dropped": direction.dropped,
            "fault_dropped": direction.fault_dropped,
            "duplicated": direction.duplicated,
            "busy_until": direction.busy_until,
        }

    def fault_injector(self, from_index: int) -> Optional[FaultInjector]:
        """The bound chaos-layer injector for one direction, if any."""
        if self._fault_injectors is None:
            return None
        return self._fault_injectors[from_index]

    def __repr__(self) -> str:
        return f"Link({self.name!r}, {self.config.bandwidth_bps / MBPS:.0f} Mbps)"
