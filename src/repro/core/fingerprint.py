"""Closed-world webpage fingerprinting from burst features.

The paper's assumption 1 (§III): once object sizes are recoverable,
"any of the techniques from the HTTP/1.x literature can be used to
launch a full-fledged privacy attack".  This module provides that last
step: a classical closed-world fingerprinting classifier — k-NN over a
trace's burst-size profile — used by the E13 study to show that the
serialization attack turns pages that are indistinguishable when
multiplexed (equal totals, different object compositions) into cleanly
separable fingerprints.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import NearestNeighborClassifier

#: Number of burst sizes kept in the feature vector.
TOP_BURSTS = 12


def trace_features(
    monitor: TrafficMonitor,
    estimator: Optional[SizeEstimator] = None,
    since: float = 0.0,
) -> List[float]:
    """A fixed-length feature vector for one page-load trace.

    Features: the ``TOP_BURSTS`` largest burst sizes in descending
    order (zero-padded), the total application bytes, and the burst
    count — the classic size-profile features of the fingerprinting
    literature, computed purely from on-path-visible data.
    """
    estimator = estimator or SizeEstimator()
    estimates = estimator.estimate(monitor.response_packets(since))
    sizes = sorted(
        (float(estimate.payload_bytes) for estimate in estimates),
        reverse=True,
    )
    # Retransmitted duplicate servings replay an object's size; a burst
    # within 2 % of an already-kept one is folded away so the sorted
    # profile stays positionally stable across visits.
    deduped: List[float] = []
    for size in sizes:
        if not any(abs(size - kept) <= 0.02 * kept for kept in deduped):
            deduped.append(size)
    top = deduped[:TOP_BURSTS]
    top += [0.0] * (TOP_BURSTS - len(top))
    total = float(sum(deduped))
    return top + [total, float(len(deduped))]


class PageFingerprinter:
    """k-NN closed-world page classifier over trace features."""

    def __init__(self, k: int = 3) -> None:
        self._knn = NearestNeighborClassifier(k=k)
        self.trained = False

    def fit(
        self,
        feature_vectors: Sequence[Sequence[float]],
        page_labels: Sequence[str],
    ) -> "PageFingerprinter":
        """Train on labelled page-load feature vectors."""
        self._knn.fit(feature_vectors, page_labels)
        self.trained = True
        return self

    def predict(self, feature_vector: Sequence[float]) -> str:
        """The page a trace most resembles."""
        if not self.trained:
            raise RuntimeError("fingerprinter not trained")
        return self._knn.predict([feature_vector])[0]

    def accuracy(
        self,
        feature_vectors: Sequence[Sequence[float]],
        page_labels: Sequence[str],
    ) -> float:
        """Classification accuracy on a labelled test set."""
        if not self.trained:
            raise RuntimeError("fingerprinter not trained")
        return self._knn.score(feature_vectors, page_labels)
