"""The attack state machine (paper §V).

Phases, exactly as the paper runs them against isidewith.com:

1. **Arm** — on connection detection, install the GET-spacing filter
   (50 ms) and start counting GET requests on the client→server path.
2. **Trigger** — when the N-th GET passes (N=6, the result HTML),
   throttle the bandwidth to 800 Mbps and start dropping 80 % of
   server→client application packets.
3. **Reset window** — keep dropping for 6 seconds, forcing the client
   to RST_STREAM everything and re-request with a backed-off TCP.
4. **Escalate** — once the drops stop, raise the GET spacing to 80 ms
   so the 8 re-requested emblem images are served one at a time.

The phases and parameters are configurable so the single-parameter
experiments of §IV (Table I, Figure 5, the §IV-D drop study) can run
individual pieces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.controller import NetworkController
from repro.simkernel.trace import TraceLog
from repro.simkernel.units import MBPS


class AttackPhase(enum.Enum):
    IDLE = "idle"
    SPACING = "spacing"
    DROPPING = "dropping"
    ESCALATED = "escalated"
    #: The drop-phase serialization attempt failed and the retry budget
    #: is exhausted — the attack gives up instead of reporting garbage
    #: estimates (graceful degradation under network faults).
    ABORTED = "aborted"


@dataclass
class AdversaryConfig:
    """Attack parameters (defaults are the paper's §V values).

    ``initial_jitter`` / ``escalated_jitter`` are *mean* added delays
    (netem semantics — see
    :class:`~repro.core.controller.RandomJitterFilter`).  Setting
    ``ideal_spacing`` True swaps in the idealized no-reordering spacing
    filter instead, for the ablation study.
    """

    initial_jitter: float = 0.050
    escalated_jitter: float = 0.080
    bandwidth_limit: Optional[float] = 800 * MBPS
    drop_rate: float = 0.80
    drop_duration: float = 6.0
    trigger_get_index: int = 6
    enable_drops: bool = True
    enable_bandwidth_limit: bool = True
    enable_escalation: bool = True
    #: "spacing" = the calculated per-request holds of §IV-B with the
    #: actuator noise of a real tc/netem gateway; "ideal" = the same
    #: with a perfect actuator (ablation); "random" = plain netem
    #: random jitter (ablation — it clumps instead of spacing).
    jitter_mode: str = "spacing"
    #: Actuator imprecision of the attack's holds (fraction of each
    #: hold).  Calibrated so the sequence-mode accuracy reproduces
    #: Table II's declining tail (I5..I8 ≈ 60-80 %).
    spacing_noise: float = 0.4
    #: When set, the drop phase triggers on this classifier's live
    #: verdict (the §VII "ML triggering" extension) instead of the
    #: fixed ``trigger_get_index``.
    trigger_classifier: Optional[object] = None
    #: Adaptive recovery (graceful degradation under network faults).
    #: After each drop window the adversary checks, through its own
    #: :class:`~repro.core.monitor.TrafficMonitor` view of the gateway
    #: capture, whether the client visibly reacted — new (non-
    #: retransmitted) GETs observed after the window opened, the wire
    #: signature of RST_STREAM-and-re-request.  If nothing new was seen
    #: (the window coincided with an outage or a total stall) the drop
    #: phase is re-triggered with exponential backoff, up to this many
    #: retries; exhausting the budget moves the attack to ``ABORTED``
    #: instead of escalating over garbage.  0 disables detection and
    #: retries entirely — the pre-fault-tolerance behaviour.
    max_drop_retries: int = 0
    #: Initial pause before the first re-triggered drop window.
    retry_backoff: float = 0.5
    #: Multiplier applied to the backoff after every retry.
    retry_backoff_factor: float = 2.0
    #: Minimum new GETs observed after the window opened for the
    #: attempt to count as a success.
    retry_success_min_gets: int = 1

    def __post_init__(self) -> None:
        if self.initial_jitter < 0 or self.escalated_jitter < 0:
            raise ValueError("jitter values must be non-negative")
        if not (0.0 <= self.drop_rate <= 1.0):
            raise ValueError("drop rate must be in [0, 1]")
        if self.trigger_get_index < 1:
            raise ValueError("trigger GET index is 1-based")
        if self.jitter_mode not in ("spacing", "ideal", "random"):
            raise ValueError(f"unknown jitter mode {self.jitter_mode!r}")
        if self.max_drop_retries < 0:
            raise ValueError("max_drop_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_success_min_gets < 1:
            raise ValueError("retry_success_min_gets must be >= 1")


class Adversary:
    """Drives the controller through the attack phases."""

    def __init__(
        self,
        controller: NetworkController,
        config: Optional[AdversaryConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.controller = controller
        self.config = config or AdversaryConfig()
        self._trace = trace
        self.phase = AttackPhase.IDLE
        self.trigger_time: Optional[float] = None
        self.escalation_time: Optional[float] = None
        #: Drop-window retries spent so far (adaptive recovery).
        self.retries_used = 0
        #: When the current (or last) drop window opened.
        self.attempt_started: Optional[float] = None
        self.abort_time: Optional[float] = None

    @property
    def sim(self):
        return self.controller.sim

    @property
    def aborted(self) -> bool:
        return self.phase is AttackPhase.ABORTED

    def arm(self) -> None:
        """Phase 1: jitter + GET counting; register the trigger."""
        if self.phase is not AttackPhase.IDLE:
            raise RuntimeError(f"arm() in phase {self.phase}")
        self._apply_jitter(self.config.initial_jitter)
        if self.config.trigger_classifier is not None:
            from repro.core.trigger import ClassifierTrigger

            self.classifier_trigger = ClassifierTrigger(
                self.config.trigger_classifier, self._on_trigger
            )
            self.controller.get_counter.on_get = self.classifier_trigger.observe
        else:
            self.classifier_trigger = None
            self.controller.on_nth_get(
                self.config.trigger_get_index, self._on_trigger
            )
        self.phase = AttackPhase.SPACING
        self._record("attack.armed", jitter=self.config.initial_jitter)

    def _on_trigger(self, now: float) -> None:
        """Phase 2: the N-th GET just passed — throttle and drop."""
        if self.phase is not AttackPhase.SPACING:
            return
        self.trigger_time = now
        if self.config.enable_bandwidth_limit:
            self.controller.limit_bandwidth(self.config.bandwidth_limit)
        if self.config.enable_drops:
            self.controller.install_drops(self.config.drop_rate)
            self.controller.start_drops(self.config.drop_duration)
            self.phase = AttackPhase.DROPPING
            self.attempt_started = now
            self.sim.schedule(self.config.drop_duration, self._on_drops_done)
        else:
            self._escalate()
        self._record(
            "attack.triggered",
            get_index=self.config.trigger_get_index,
        )

    def _on_drops_done(self) -> None:
        """Phase 3 → 4: drop window over; escalate, retry, or abort."""
        if self.phase is not AttackPhase.DROPPING:
            return
        if self.config.max_drop_retries == 0:
            self._escalate()
            return
        if self._serialization_succeeded():
            self._escalate()
            return
        if self.retries_used >= self.config.max_drop_retries:
            self._abort()
            return
        backoff = self.config.retry_backoff * (
            self.config.retry_backoff_factor ** self.retries_used
        )
        self.retries_used += 1
        self._record(
            "attack.retry_scheduled",
            attempt=self.retries_used,
            backoff=backoff,
        )
        self.sim.schedule(backoff, self._retry_drops)

    def _serialization_succeeded(self) -> bool:
        """Did the drop window visibly elicit the client's reaction?

        The adversary owns the gateway, so it can replay its own capture
        through a :class:`~repro.core.monitor.TrafficMonitor`.  A
        successful window shows *new* (non-retransmitted) GET requests
        after the window opened — the re-requests that follow the forced
        RST_STREAMs, or at minimum continued request traffic to
        serialize.  A window that coincided with an outage, a link flap
        or a client stalled into deep RTO backoff shows nothing new, and
        dropping was wasted.
        """
        if self.attempt_started is None:
            return False
        from repro.core.monitor import TrafficMonitor

        monitor = TrafficMonitor(self.controller.middlebox.capture)
        fresh = [
            observation
            for observation in monitor.get_requests()
            if observation.time > self.attempt_started
        ]
        return len(fresh) >= self.config.retry_success_min_gets

    def _retry_drops(self) -> None:
        """Re-open the drop window for another serialization attempt."""
        if self.phase is not AttackPhase.DROPPING:
            return
        now = self.sim.now
        self.attempt_started = now
        self.controller.start_drops(self.config.drop_duration)
        self._record("attack.retry", attempt=self.retries_used)
        self.sim.schedule(self.config.drop_duration, self._on_drops_done)

    def _abort(self) -> None:
        """Give up: stop actuating and report no estimate at all."""
        self.phase = AttackPhase.ABORTED
        self.abort_time = self.sim.now
        if self.controller.drop_filter is not None:
            self.controller.drop_filter.deactivate()
        self._record("attack.aborted", retries=self.retries_used)

    def _escalate(self) -> None:
        if self.config.enable_escalation:
            self._apply_jitter(self.config.escalated_jitter)
            self.escalation_time = self.sim.now
            self._record(
                "attack.escalated", jitter=self.config.escalated_jitter
            )
        self.phase = AttackPhase.ESCALATED

    def _apply_jitter(self, amount: float) -> None:
        if self.config.jitter_mode == "random":
            self.controller.install_jitter(amount)
        elif self.config.jitter_mode == "ideal":
            self.controller.install_spacing(amount, noise_fraction=0.0)
        else:
            self.controller.install_spacing(
                amount, noise_fraction=self.config.spacing_noise
            )

    def _record(self, category: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self.sim.now, category, phase=self.phase.value, **fields)

    def __repr__(self) -> str:
        return f"Adversary({self.phase.value})"
