"""The attack state machine (paper §V).

Phases, exactly as the paper runs them against isidewith.com:

1. **Arm** — on connection detection, install the GET-spacing filter
   (50 ms) and start counting GET requests on the client→server path.
2. **Trigger** — when the N-th GET passes (N=6, the result HTML),
   throttle the bandwidth to 800 Mbps and start dropping 80 % of
   server→client application packets.
3. **Reset window** — keep dropping for 6 seconds, forcing the client
   to RST_STREAM everything and re-request with a backed-off TCP.
4. **Escalate** — once the drops stop, raise the GET spacing to 80 ms
   so the 8 re-requested emblem images are served one at a time.

The phases and parameters are configurable so the single-parameter
experiments of §IV (Table I, Figure 5, the §IV-D drop study) can run
individual pieces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.controller import NetworkController
from repro.simkernel.trace import TraceLog
from repro.simkernel.units import MBPS


class AttackPhase(enum.Enum):
    IDLE = "idle"
    SPACING = "spacing"
    DROPPING = "dropping"
    ESCALATED = "escalated"


@dataclass
class AdversaryConfig:
    """Attack parameters (defaults are the paper's §V values).

    ``initial_jitter`` / ``escalated_jitter`` are *mean* added delays
    (netem semantics — see
    :class:`~repro.core.controller.RandomJitterFilter`).  Setting
    ``ideal_spacing`` True swaps in the idealized no-reordering spacing
    filter instead, for the ablation study.
    """

    initial_jitter: float = 0.050
    escalated_jitter: float = 0.080
    bandwidth_limit: Optional[float] = 800 * MBPS
    drop_rate: float = 0.80
    drop_duration: float = 6.0
    trigger_get_index: int = 6
    enable_drops: bool = True
    enable_bandwidth_limit: bool = True
    enable_escalation: bool = True
    #: "spacing" = the calculated per-request holds of §IV-B with the
    #: actuator noise of a real tc/netem gateway; "ideal" = the same
    #: with a perfect actuator (ablation); "random" = plain netem
    #: random jitter (ablation — it clumps instead of spacing).
    jitter_mode: str = "spacing"
    #: Actuator imprecision of the attack's holds (fraction of each
    #: hold).  Calibrated so the sequence-mode accuracy reproduces
    #: Table II's declining tail (I5..I8 ≈ 60-80 %).
    spacing_noise: float = 0.4
    #: When set, the drop phase triggers on this classifier's live
    #: verdict (the §VII "ML triggering" extension) instead of the
    #: fixed ``trigger_get_index``.
    trigger_classifier: Optional[object] = None

    def __post_init__(self) -> None:
        if self.initial_jitter < 0 or self.escalated_jitter < 0:
            raise ValueError("jitter values must be non-negative")
        if not (0.0 <= self.drop_rate <= 1.0):
            raise ValueError("drop rate must be in [0, 1]")
        if self.trigger_get_index < 1:
            raise ValueError("trigger GET index is 1-based")
        if self.jitter_mode not in ("spacing", "ideal", "random"):
            raise ValueError(f"unknown jitter mode {self.jitter_mode!r}")


class Adversary:
    """Drives the controller through the attack phases."""

    def __init__(
        self,
        controller: NetworkController,
        config: Optional[AdversaryConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.controller = controller
        self.config = config or AdversaryConfig()
        self._trace = trace
        self.phase = AttackPhase.IDLE
        self.trigger_time: Optional[float] = None
        self.escalation_time: Optional[float] = None

    @property
    def sim(self):
        return self.controller.sim

    def arm(self) -> None:
        """Phase 1: jitter + GET counting; register the trigger."""
        if self.phase is not AttackPhase.IDLE:
            raise RuntimeError(f"arm() in phase {self.phase}")
        self._apply_jitter(self.config.initial_jitter)
        if self.config.trigger_classifier is not None:
            from repro.core.trigger import ClassifierTrigger

            self.classifier_trigger = ClassifierTrigger(
                self.config.trigger_classifier, self._on_trigger
            )
            self.controller.get_counter.on_get = self.classifier_trigger.observe
        else:
            self.classifier_trigger = None
            self.controller.on_nth_get(
                self.config.trigger_get_index, self._on_trigger
            )
        self.phase = AttackPhase.SPACING
        self._record("attack.armed", jitter=self.config.initial_jitter)

    def _on_trigger(self, now: float) -> None:
        """Phase 2: the N-th GET just passed — throttle and drop."""
        if self.phase is not AttackPhase.SPACING:
            return
        self.trigger_time = now
        if self.config.enable_bandwidth_limit:
            self.controller.limit_bandwidth(self.config.bandwidth_limit)
        if self.config.enable_drops:
            self.controller.install_drops(self.config.drop_rate)
            self.controller.start_drops(self.config.drop_duration)
            self.phase = AttackPhase.DROPPING
            self.sim.schedule(self.config.drop_duration, self._on_drops_done)
        else:
            self._escalate()
        self._record(
            "attack.triggered",
            get_index=self.config.trigger_get_index,
        )

    def _on_drops_done(self) -> None:
        """Phase 3 → 4: drop window over; escalate the spacing."""
        if self.phase is not AttackPhase.DROPPING:
            return
        self._escalate()

    def _escalate(self) -> None:
        if self.config.enable_escalation:
            self._apply_jitter(self.config.escalated_jitter)
            self.escalation_time = self.sim.now
            self._record(
                "attack.escalated", jitter=self.config.escalated_jitter
            )
        self.phase = AttackPhase.ESCALATED

    def _apply_jitter(self, amount: float) -> None:
        if self.config.jitter_mode == "random":
            self.controller.install_jitter(amount)
        elif self.config.jitter_mode == "ideal":
            self.controller.install_spacing(amount, noise_fraction=0.0)
        else:
            self.controller.install_spacing(
                amount, noise_fraction=self.config.spacing_noise
            )

    def _record(self, category: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self.sim.now, category, phase=self.phase.value, **fields)

    def __repr__(self) -> str:
        return f"Adversary({self.phase.value})"
