"""The object prediction module: size → identity.

The adversary holds a pre-compiled map of object identities to body
sizes (paper §V: "a pre-compiled list of image size to political party
mapping").  On-wire estimates measure TLS ciphertext, so the predictor
models the framing overhead analytically — DATA chunking, HTTP/2 frame
headers, TLS record headers and AEAD expansion — to convert a known
body size into its expected on-wire payload, then nearest-matches
estimates against expectations.

A small from-scratch k-nearest-neighbour classifier is included for
feature-based variants (size + duration), standing in for the paper's
mention of off-the-shelf ML classifiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import ObjectEstimate

#: HTTP/2 frame header octets.
FRAME_HEADER = 9
#: TLS record header + AEAD expansion (TLS 1.2 GCM) per record.
RECORD_OVERHEAD = 29
#: Typical response HEADERS frame wire size (status line + the header
#: fields of repro.h2.server.H2Server.response_headers, HPACK-coded).
RESPONSE_HEADERS_WIRE = 120

#: Default server DATA chunking granularity the adversary calibrates.
DEFAULT_CHUNK_BYTES = 2048


def expected_wire_payload(
    body_bytes: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> int:
    """Expected on-wire TCP payload of one serialized response.

    The framing model shared by :class:`SizePredictor` and the
    campaign engine's analytic evaluator: DATA chunking, HTTP/2 frame
    headers, TLS record overhead, plus the response HEADERS frame.
    """
    frames = max(1, math.ceil(body_bytes / chunk_bytes))
    data_wire = body_bytes + frames * (FRAME_HEADER + RECORD_OVERHEAD)
    return data_wire + RESPONSE_HEADERS_WIRE


@dataclass(frozen=True)
class Match:
    """One classification outcome."""

    object_id: str
    expected_payload: int
    observed_payload: int

    @property
    def error(self) -> int:
        return abs(self.observed_payload - self.expected_payload)


class SizePredictor:
    """Matches wire-size estimates against a known object inventory."""

    def __init__(
        self,
        size_map: Dict[str, int],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        tolerance_abs: int = 350,
        tolerance_rel: float = 0.05,
    ) -> None:
        """
        Args:
            size_map: object_id → body size in bytes (adversary prior).
            chunk_bytes: the server's DATA chunking granularity, which
                the adversary calibrates offline by fetching known
                objects itself.
            tolerance_abs / tolerance_rel: a match requires the error
                to be within ``max(tolerance_abs, tolerance_rel *
                expected)``.
        """
        if not size_map:
            raise ValueError("size map must not be empty")
        self.size_map = dict(size_map)
        self.chunk_bytes = chunk_bytes
        self.tolerance_abs = tolerance_abs
        self.tolerance_rel = tolerance_rel
        self._expected = {
            object_id: self.expected_payload(body)
            for object_id, body in self.size_map.items()
        }

    def expected_payload(self, body_bytes: int) -> int:
        """Expected on-wire TCP payload of a serialized response."""
        return expected_wire_payload(body_bytes, self.chunk_bytes)

    def expected_for(self, object_id: str) -> int:
        """Expected payload for a known object.

        Raises:
            KeyError: for unknown object ids.
        """
        return self._expected[object_id]

    def _within_tolerance(self, observed: int, expected: int) -> bool:
        budget = max(self.tolerance_abs, self.tolerance_rel * expected)
        return abs(observed - expected) <= budget

    def classify(
        self,
        estimate: ObjectEstimate,
        candidates: Optional[Sequence[str]] = None,
    ) -> Optional[Match]:
        """Best in-tolerance match for one estimate, or None."""
        pool = candidates if candidates is not None else list(self._expected)
        best: Optional[Match] = None
        for object_id in pool:
            expected = self._expected[object_id]
            if not self._within_tolerance(estimate.payload_bytes, expected):
                continue
            match = Match(object_id, expected, estimate.payload_bytes)
            if best is None or match.error < best.error:
                best = match
        return best

    def find_object(
        self,
        estimates: Sequence[ObjectEstimate],
        object_id: str,
    ) -> Optional[ObjectEstimate]:
        """The estimate best matching a specific target object."""
        expected = self._expected[object_id]
        best: Optional[ObjectEstimate] = None
        best_error = None
        for estimate in estimates:
            if not self._within_tolerance(estimate.payload_bytes, expected):
                continue
            error = abs(estimate.payload_bytes - expected)
            if best_error is None or error < best_error:
                best, best_error = estimate, error
        return best

    def predict_sequence(
        self,
        estimates: Sequence[ObjectEstimate],
        candidates: Sequence[str],
    ) -> List[Tuple[ObjectEstimate, Match]]:
        """Label estimates against ``candidates`` in temporal order.

        Each candidate is consumed at most once (the emblem images each
        appear once per page); returns (estimate, match) pairs ordered
        by estimate start time.
        """
        remaining = list(candidates)
        labelled: List[Tuple[ObjectEstimate, Match]] = []
        for estimate in sorted(estimates, key=lambda e: e.start_time):
            match = self.classify(estimate, candidates=remaining)
            if match is None:
                continue
            remaining.remove(match.object_id)
            labelled.append((estimate, match))
            if not remaining:
                break
        return labelled

    def predict_sequence_assignment(
        self,
        estimates: Sequence[ObjectEstimate],
        candidates: Sequence[str],
    ) -> List[Tuple[ObjectEstimate, Match]]:
        """Recover the candidate order via minimum-cost assignment.

        Each candidate (emblem image) was served exactly once in the
        analysis window, but the window also contains junk bursts —
        other re-served objects, duplicate servings from retransmitted
        requests — some of which coincidentally land near a candidate's
        size.  The prediction module therefore solves a minimum-cost
        bipartite assignment (Hungarian algorithm) between expected
        candidate sizes and observed bursts, restricted to in-tolerance
        pairs, and reads the order off the chosen bursts' timestamps.

        The candidates were requested back to back (paper assumption 5)
        and the attack serializes them, so the true transmissions form
        a *dense window* containing all candidate sizes exactly once.
        The module slides a window over the trace, scores each position
        by how many distinct candidates an in-window assignment covers
        (ties: lower total size error, then later window), and solves
        the assignment inside the best window.

        Returns (estimate, match) pairs in temporal order; candidates
        with no in-tolerance burst are absent.
        """
        ordered = sorted(estimates, key=lambda e: e.start_time)
        if not ordered:
            return []
        pool = list(candidates)

        window = self._sequence_window(ordered, pool)
        assignment = self._assign(window, pool)
        assignment.sort(key=lambda pair: pair[0].start_time)
        return assignment

    def _sequence_window(
        self,
        ordered: Sequence[ObjectEstimate],
        pool: Sequence[str],
        window_seconds: float = 2.5,
        step_seconds: float = 0.25,
    ) -> List[ObjectEstimate]:
        """The window of estimates best covering all candidates."""
        start = ordered[0].start_time
        end = ordered[-1].start_time
        best_window: List[ObjectEstimate] = list(ordered)
        best_score: Tuple[int, float, float] = (-1, 0.0, 0.0)
        position = start
        while True:
            in_window = [
                estimate for estimate in ordered
                if position <= estimate.start_time <= position + window_seconds
            ]
            if in_window:
                assignment = self._assign(in_window, pool)
                total_error = sum(match.error for _, match in assignment)
                score = (len(assignment), -total_error, position)
                if score > best_score:
                    best_score = score
                    best_window = in_window
            if position > end:
                break
            position += step_seconds
        return best_window

    def _assign(
        self,
        estimates: Sequence[ObjectEstimate],
        pool: Sequence[str],
    ) -> List[Tuple[ObjectEstimate, Match]]:
        """Min-error bipartite assignment of candidates to estimates."""
        from scipy.optimize import linear_sum_assignment

        if not estimates:
            return []
        big = 1e12
        cost = np.full((len(pool), len(estimates)), big)
        for row, object_id in enumerate(pool):
            expected = self._expected[object_id]
            for col, estimate in enumerate(estimates):
                if self._within_tolerance(estimate.payload_bytes, expected):
                    cost[row, col] = abs(estimate.payload_bytes - expected)
        rows, cols = linear_sum_assignment(cost)
        return [
            (estimates[col], Match(
                pool[row],
                self._expected[pool[row]],
                estimates[col].payload_bytes,
            ))
            for row, col in zip(rows, cols)
            if cost[row, col] < big
        ]


class NearestNeighborClassifier:
    """A minimal k-NN classifier (numpy-only).

    Features are standardized per dimension; prediction is the majority
    label among the k nearest training points (Euclidean distance).
    """

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._features: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def fit(
        self, features: Sequence[Sequence[float]], labels: Sequence[str]
    ) -> "NearestNeighborClassifier":
        """Store the training set (standardizing features)."""
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim != 2 or len(matrix) != len(labels):
            raise ValueError("features must be 2-D and aligned with labels")
        if len(matrix) < self.k:
            raise ValueError("need at least k training points")
        self._mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._features = (matrix - self._mean) / self._scale
        self._labels = np.asarray(labels)
        return self

    def predict(self, features: Sequence[Sequence[float]]) -> List[str]:
        """Majority-vote labels for each query point."""
        if self._features is None:
            raise RuntimeError("classifier not fitted")
        queries = (np.asarray(features, dtype=float) - self._mean) / self._scale
        predictions = []
        for query in queries:
            distances = np.linalg.norm(self._features - query, axis=1)
            nearest = np.argsort(distances, kind="stable")[: self.k]
            values, counts = np.unique(self._labels[nearest], return_counts=True)
            predictions.append(str(values[np.argmax(counts)]))
        return predictions

    def score(
        self, features: Sequence[Sequence[float]], labels: Sequence[str]
    ) -> float:
        """Accuracy on a labelled set."""
        predictions = self.predict(features)
        hits = sum(1 for p, t in zip(predictions, labels) if p == t)
        return hits / len(labels)

    def margin(
        self, features: Sequence[Sequence[float]], positive_label: str
    ) -> List[float]:
        """Per-query decision margin toward ``positive_label``.

        Defined as (distance to the nearest other-class point) minus
        (distance to the nearest positive point): larger is more
        confidently positive.
        """
        if self._features is None:
            raise RuntimeError("classifier not fitted")
        queries = (np.asarray(features, dtype=float) - self._mean) / self._scale
        positive_mask = self._labels == positive_label
        if not positive_mask.any() or positive_mask.all():
            raise ValueError("need both classes for a margin")
        positives = self._features[positive_mask]
        negatives = self._features[~positive_mask]
        margins = []
        for query in queries:
            to_positive = np.linalg.norm(positives - query, axis=1).min()
            to_negative = np.linalg.norm(negatives - query, axis=1).min()
            margins.append(float(to_negative - to_positive))
        return margins
