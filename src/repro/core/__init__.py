"""The paper's contribution: the active HTTP/2 serialization attack.

This package contains everything the adversary is and measures:

* :mod:`repro.core.monitor` — the tshark-equivalent traffic monitor
  (GET detection from cleartext TLS content types and packet sizes),
* :mod:`repro.core.estimator` — passive object-size estimation from
  encrypted traffic (the Figure 1 delimiter heuristic),
* :mod:`repro.core.metrics` — the degree-of-multiplexing metric (§II-A)
  computed from ground truth, used to score the attack,
* :mod:`repro.core.controller` — the network controller: request
  spacing (jitter), bandwidth throttling, targeted drops (§IV),
* :mod:`repro.core.adversary` — the attack state machine tying the
  phases together (§V),
* :mod:`repro.core.predictor` — the size→identity prediction module,
* :mod:`repro.core.sequence` — the full Table II sequence attack,
* :mod:`repro.core.analysis` — partial-multiplexing inference
  (future work, §VII),
* :mod:`repro.core.defenses` — the priority-randomization defense
  sketched in §VII.
"""

from repro.core.adversary import Adversary, AdversaryConfig
from repro.core.analysis import PartialMultiplexingAnalyzer
from repro.core.controller import (
    GetCounter,
    NetworkController,
    RandomJitterFilter,
    SpacingFilter,
    TargetedDropFilter,
    UniformDelayFilter,
)
from repro.core.defenses import PriorityShuffleDefense, ServerPushDefense
from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.metrics import (
    MultiplexingReport,
    degree_of_multiplexing,
    instance_byte_ranges,
)
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import NearestNeighborClassifier, SizePredictor
from repro.core.sequence import SequenceAttack, SequenceAttackResult

__all__ = [
    "Adversary",
    "AdversaryConfig",
    "GetCounter",
    "MultiplexingReport",
    "NearestNeighborClassifier",
    "NetworkController",
    "ObjectEstimate",
    "PartialMultiplexingAnalyzer",
    "PriorityShuffleDefense",
    "RandomJitterFilter",
    "SequenceAttack",
    "SequenceAttackResult",
    "ServerPushDefense",
    "SizeEstimator",
    "SizePredictor",
    "SpacingFilter",
    "TargetedDropFilter",
    "TrafficMonitor",
    "UniformDelayFilter",
    "degree_of_multiplexing",
    "instance_byte_ranges",
]
