"""The end-to-end sequence attack and its scoring (Table II).

Combines the pieces: after a trial runs, the adversary's capture is
segmented into size estimates, matched against the pre-compiled size
map, and scored against ground truth using the paper's success
criterion —

    "We consider our attack to be successful only when the adversary is
    able to bring down the degree of multiplexing of the object of
    interest to 0% and identify it from the encrypted traffic."

Two scoring modes mirror Table II's two rows: *one object at a time*
(was this single object identified and non-multiplexed?) and *all
objects at a time* (in the temporally ordered labelling of the whole
stream, is this object predicted at its true position?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.metrics import MultiplexingReport
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import Match, SizePredictor
from repro.web.isidewith import HTML_OBJECT_ID, IsideWithSite


@dataclass
class ObjectVerdict:
    """Per-object outcome of one trial.

    Attributes:
        object_id: the target object.
        identified: the adversary found an in-tolerance size match.
        degree_zero: some serving of the object reached degree 0.
        degree_zero_original: the *original* (non-duplicate) serving
            reached degree 0 — distinguishing real successes from the
            retransmitted-copy successes Figure 5 dissects.
        original_degree: ground-truth degree of the first serving
            (None when it never hit the wire).
        success: the paper's criterion — identified AND degree 0.
    """

    object_id: str
    identified: bool
    degree_zero: bool
    degree_zero_original: bool
    original_degree: Optional[float]
    matched_estimate: Optional[ObjectEstimate] = None

    @property
    def success(self) -> bool:
        return self.identified and self.degree_zero

    @property
    def success_via_duplicate_only(self) -> bool:
        """Succeeded, but only a retransmitted copy was serialized."""
        return self.success and not self.degree_zero_original


@dataclass
class SequenceAttackResult:
    """Outcome of one full attack trial."""

    single_object: Dict[str, ObjectVerdict] = field(default_factory=dict)
    sequence_prediction: List[str] = field(default_factory=list)
    sequence_truth: List[str] = field(default_factory=list)
    sequence_correct: Dict[str, bool] = field(default_factory=dict)
    broken_connection: bool = False
    #: The adversary gave up (ABORTED phase) instead of estimating; the
    #: verdicts above describe what the wire happened to show, but the
    #: attack claims no success for them.
    attack_aborted: bool = False

    def single_success(self, object_id: str) -> bool:
        verdict = self.single_object.get(object_id)
        return bool(verdict and verdict.success)

    def sequence_success(self, object_id: str) -> bool:
        """All-objects-at-a-time success for one object: correct position
        in the predicted sequence AND non-multiplexed."""
        return self.sequence_correct.get(object_id, False)


class SequenceAttack:
    """Offline analysis of one attacked page load."""

    def __init__(
        self,
        site: IsideWithSite,
        estimator: Optional[SizeEstimator] = None,
        predictor: Optional[SizePredictor] = None,
        chunk_bytes: int = 2048,
    ) -> None:
        self.site = site
        self.estimator = estimator or SizeEstimator()
        self.predictor = predictor or SizePredictor(
            site.size_map(), chunk_bytes=chunk_bytes
        )

    @property
    def emblem_ids(self) -> List[str]:
        """The 8 emblem object ids (identity set, order unknown a
        priori to the adversary)."""
        return [f"emblem-{party}" for party in sorted(self.site.party_order)]

    def analyze(
        self,
        monitor: TrafficMonitor,
        report: MultiplexingReport,
        analysis_start: float = 0.0,
        broken_connection: bool = False,
        attack_aborted: bool = False,
    ) -> SequenceAttackResult:
        """Score one trial.

        Args:
            monitor: the adversary's packet capture queries.
            report: ground-truth multiplexing degrees for the trial.
            analysis_start: ignore traffic before this time (the attack
                analyses traffic after the reset window when targeting
                the image sequence).
            broken_connection: the page load failed outright.
            attack_aborted: the adversary's drop phase gave up; the
                result is flagged so aggregations can exclude it.
        """
        result = SequenceAttackResult(
            sequence_truth=[f"emblem-{p}" for p in self.site.party_order],
            broken_connection=broken_connection,
            attack_aborted=attack_aborted,
        )
        packets = monitor.response_packets()
        estimates = self.estimator.estimate(packets)

        # --- One object at a time -------------------------------------
        for object_id in self.site.objects_of_interest:
            result.single_object[object_id] = self._verdict(
                object_id, estimates, report
            )

        # --- All objects at a time ------------------------------------
        late_estimates = [
            estimate for estimate in estimates
            if estimate.start_time >= analysis_start
        ]
        labelled = self.predictor.predict_sequence_assignment(
            late_estimates, candidates=list(result.sequence_truth)
        )
        result.sequence_prediction = [match.object_id for _, match in labelled]
        for position, truth_id in enumerate(result.sequence_truth):
            predicted_ok = (
                position < len(result.sequence_prediction)
                and result.sequence_prediction[position] == truth_id
            )
            serialized = self._degree_zero(truth_id, report)
            result.sequence_correct[truth_id] = (
                predicted_ok and serialized and not broken_connection
            )
        # The HTML is scored in sequence mode too (Table II column 1):
        # its sequence success equals its single-object success since it
        # is not part of the ordered image set.
        html_verdict = result.single_object.get(HTML_OBJECT_ID)
        if html_verdict is not None:
            result.sequence_correct[HTML_OBJECT_ID] = (
                html_verdict.success and not broken_connection
            )
        return result

    # ------------------------------------------------------------------

    def _verdict(
        self,
        object_id: str,
        estimates: Sequence[ObjectEstimate],
        report: MultiplexingReport,
    ) -> ObjectVerdict:
        matched = self.predictor.find_object(estimates, object_id)
        min_degree = report.min_degree(object_id)
        original_degree = report.original_degree(object_id)
        return ObjectVerdict(
            object_id=object_id,
            identified=matched is not None,
            degree_zero=(min_degree is not None and min_degree == 0.0),
            degree_zero_original=(
                original_degree is not None and original_degree == 0.0
            ),
            original_degree=original_degree,
            matched_estimate=matched,
        )

    def _degree_zero(self, object_id: str, report: MultiplexingReport) -> bool:
        min_degree = report.min_degree(object_id)
        return min_degree is not None and min_degree == 0.0
