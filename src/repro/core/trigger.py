"""Learning-based attack triggering (paper §VII, future work).

    "We believe that triggering the packet drops and jitter accurately
    will alleviate this problem, possibly using machine learning."

The §V attack fires its drop phase at the *6th* GET — the result HTML's
fixed position in the request sequence.  That breaks the moment the
sequence shifts: a returning visitor's browser serves some early
objects from cache and the HTML arrives as the 4th or 5th request.

:class:`HtmlGetClassifier` replaces the fixed index with a k-NN
classifier over features any on-path observer has for each GET:

* the gap since the previous GET (the HTML follows the survey
  submission after a long user-side pause — Table II's 500 ms), and
* the GET record's size (path length and HPACK state make request
  records differ by tens of bytes).

The adversary trains it on its own profiling runs against the site
(assumption 4: "the adversary has sufficient time to access the website
… before launching the attack").  :class:`ClassifierTrigger` wires the
classifier into the live GET stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.monitor import GetRequestObservation
from repro.core.predictor import NearestNeighborClassifier

#: Class labels.
HTML_LABEL = "html"
OTHER_LABEL = "other"


def get_features(
    observations: Sequence[GetRequestObservation],
) -> List[List[float]]:
    """Per-GET feature vectors: [gap-from-previous (s), payload bytes].

    The first GET's gap is measured from time zero of the first
    observation (i.e. 0), which suffices since the HTML is never the
    first request of a session.
    """
    features: List[List[float]] = []
    previous_time: Optional[float] = None
    for observation in observations:
        gap = 0.0 if previous_time is None else observation.time - previous_time
        features.append([gap, float(observation.payload_bytes)])
        previous_time = observation.time
    return features


class HtmlGetClassifier:
    """k-NN over GET features: is this the result-HTML request?"""

    def __init__(self, k: int = 3) -> None:
        self._knn = NearestNeighborClassifier(k=k)
        self.trained = False

    def fit(
        self,
        sessions: Sequence[Sequence[GetRequestObservation]],
        html_indices: Sequence[int],
    ) -> "HtmlGetClassifier":
        """Train from profiling sessions.

        Args:
            sessions: each session's observed GET sequence.
            html_indices: 0-based position of the HTML's GET per session.
        """
        if len(sessions) != len(html_indices):
            raise ValueError("one html index per session required")
        features: List[List[float]] = []
        labels: List[str] = []
        for observations, html_index in zip(sessions, html_indices):
            session_features = get_features(observations)
            for position, vector in enumerate(session_features):
                features.append(vector)
                labels.append(
                    HTML_LABEL if position == html_index else OTHER_LABEL
                )
        self._knn.fit(features, labels)
        self.trained = True
        return self

    def is_html(self, gap: float, payload_bytes: int) -> bool:
        """Classify one live GET."""
        if not self.trained:
            raise RuntimeError("classifier not trained")
        return self._knn.predict([[gap, float(payload_bytes)]])[0] == HTML_LABEL

    def predict_index(
        self,
        observations: Sequence[GetRequestObservation],
        prefix: int = 10,
    ) -> Optional[int]:
        """Offline: the position of the HTML's GET in a session, or None.

        Scores each of the first ``prefix`` GETs by its k-NN decision
        margin toward the HTML class and returns the most HTML-like one
        (None when no GET scores positive).
        """
        features = get_features(observations)[:prefix]
        if not features:
            return None
        margins = self._knn.margin(features, HTML_LABEL)
        best = max(range(len(margins)), key=lambda index: margins[index])
        if margins[best] <= 0:
            return None
        return best


class ClassifierTrigger:
    """Live trigger: fires the attack when a GET classifies as the HTML.

    Install by assigning :attr:`on_get` of a
    :class:`~repro.core.controller.GetCounter` to :meth:`observe`.
    """

    def __init__(
        self,
        classifier: HtmlGetClassifier,
        callback: Callable[[float], None],
    ) -> None:
        self.classifier = classifier
        self._callback = callback
        self._previous_time: Optional[float] = None
        self.fired_at: Optional[float] = None
        self.fired_index: Optional[int] = None

    def observe(self, count: int, now: float, payload_bytes: int) -> None:
        """GetCounter hook: one new GET passed the gateway."""
        gap = 0.0 if self._previous_time is None else now - self._previous_time
        self._previous_time = now
        if self.fired_at is not None:
            return
        if self.classifier.is_html(gap, payload_bytes):
            self.fired_at = now
            self.fired_index = count
            self._callback(now)
