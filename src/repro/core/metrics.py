"""The degree-of-multiplexing metric (paper §II-A).

    "We define the degree of multiplexing of an object as the fraction
    of bytes of the object that is interleaved with those of another
    object within the same TCP stream."

Operationally, a byte of object O is *interleaved* when either

* it lies inside the stream extent (first byte .. last byte) of some
  other object served on the same TCP stream — O's bytes sit in the
  middle of another transfer; or
* O's own extent contains bytes of another object — O's transmission
  was split by foreign data, in which case **every** byte of O is
  interleaved, since no burst-summing observer can recover O's size.

An object transmitted contiguously with no other object's transmission
spanning it has degree 0 — exactly the condition under which the
Figure 1 delimiter heuristic recovers its size, which is why the paper
equates degree 0 with broken privacy.  Control records (SETTINGS,
WINDOW_UPDATE) interspersed in an object's extent do not count: they
perturb a size estimate by tens of bytes, not by object-scale amounts.

This is **ground truth**: it is computed from the server's symbolic
send-stream layout (which DATA bytes belong to which response
instance), not from anything the adversary can observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.h2.frames import DataFrame, HeadersFrame
from repro.h2.server import ResponseInstance
from repro.transport.stream import StreamLayout
from repro.tls.record import TLSRecord
from repro.tls.session import _Fragment


def _frame_context(record: TLSRecord):
    """The response instance a TLS record's payload belongs to, if any.

    Works for HTTP/2 DATA/HEADERS frames and for the HTTP/1.1 message
    chunks — anything exposing a ``context`` attribute referencing its
    response instance.
    """
    payload = record.payload
    if isinstance(payload, _Fragment):
        payload = payload.original
    return getattr(payload, "context", None)


def instance_byte_ranges(
    layout: StreamLayout,
) -> Dict[ResponseInstance, List[Tuple[int, int]]]:
    """Map each response instance to its byte ranges in the send stream.

    Ranges are the full TLS-record wire ranges (header + ciphertext) of
    the records carrying the instance's HEADERS/DATA frames, in stream
    order.
    """
    ranges: Dict[ResponseInstance, List[Tuple[int, int]]] = {}
    for span in layout.spans_completed_by(layout.next_seq):
        message = span.message
        if not isinstance(message, TLSRecord):
            continue
        instance = _frame_context(message)
        if instance is None:
            continue
        ranges.setdefault(instance, []).append((span.start, span.end))
    return ranges


def _merge(ranges: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge adjacent/overlapping sorted ranges."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(ranges):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _overlap_bytes(
    ranges: Sequence[Tuple[int, int]], extent: Tuple[int, int]
) -> int:
    lo, hi = extent
    total = 0
    for start, end in ranges:
        total += max(0, min(end, hi) - max(start, lo))
    return total


def degree_of_multiplexing(
    target: ResponseInstance,
    all_ranges: Dict[ResponseInstance, List[Tuple[int, int]]],
) -> float:
    """Fraction of ``target``'s stream bytes interleaved with others.

    Args:
        target: the response instance of interest.
        all_ranges: output of :func:`instance_byte_ranges` for the
            connection the instance was served on.

    Returns:
        Degree in [0, 1]; 0.0 when no other instance's transmission
        interleaves with the target (the non-multiplexed,
        privacy-broken case); 1.0 when the target is split by foreign
        object bytes.

    Raises:
        KeyError: when the target has no transmitted bytes (e.g. its
            frames were flushed by RST_STREAM before reaching the wire).
    """
    target_ranges = _merge(all_ranges[target])
    total = sum(end - start for start, end in target_ranges)
    if total == 0:
        raise KeyError(f"instance {target!r} transmitted no bytes")
    target_extent = (target_ranges[0][0], target_ranges[-1][1])

    interleaved_ranges: List[Tuple[int, int]] = []
    for other, other_ranges in all_ranges.items():
        if other is target or not other_ranges:
            continue
        # Split rule: any foreign object bytes inside the target's
        # extent make the whole target unsizable.
        if _overlap_bytes(other_ranges, target_extent) > 0:
            return 1.0
        extent = (
            min(start for start, _ in other_ranges),
            max(end for _, end in other_ranges),
        )
        for start, end in target_ranges:
            lo = max(start, extent[0])
            hi = min(end, extent[1])
            if hi > lo:
                interleaved_ranges.append((lo, hi))
    interleaved = sum(end - start for start, end in _merge(interleaved_ranges))
    return interleaved / total


def _all_degrees(
    all_ranges: Dict[ResponseInstance, List[Tuple[int, int]]],
) -> Dict[ResponseInstance, float]:
    """Degrees for every instance at once.

    Equivalent to calling :func:`degree_of_multiplexing` per instance,
    but merges each instance's ranges and derives its extent exactly
    once instead of once per (target, other) pair — the pairwise loop
    dominated trial teardown before this.
    """
    merged: Dict[ResponseInstance, List[Tuple[int, int]]] = {
        instance: _merge(ranges)
        for instance, ranges in all_ranges.items()
        if ranges
    }
    extents = {
        instance: (ranges[0][0], ranges[-1][1])
        for instance, ranges in merged.items()
    }
    degrees: Dict[ResponseInstance, float] = {}
    for target, target_ranges in merged.items():
        total = sum(end - start for start, end in target_ranges)
        if total == 0:
            raise KeyError(f"instance {target!r} transmitted no bytes")
        target_extent = extents[target]
        interleaved_ranges: List[Tuple[int, int]] = []
        split = False
        for other, other_ranges in merged.items():
            if other is target:
                continue
            # Split rule: any foreign object bytes inside the target's
            # extent make the whole target unsizable.
            if _overlap_bytes(other_ranges, target_extent) > 0:
                split = True
                break
            other_lo, other_hi = extents[other]
            for start, end in target_ranges:
                lo = start if start > other_lo else other_lo
                hi = end if end < other_hi else other_hi
                if hi > lo:
                    interleaved_ranges.append((lo, hi))
        if split:
            degrees[target] = 1.0
        else:
            interleaved = sum(
                end - start for start, end in _merge(interleaved_ranges)
            )
            degrees[target] = interleaved / total
    return degrees


@dataclass
class MultiplexingReport:
    """Per-instance multiplexing summary for one server connection."""

    degrees: Dict[ResponseInstance, float] = field(default_factory=dict)

    @classmethod
    def from_layout(cls, layout: StreamLayout) -> "MultiplexingReport":
        """Compute degrees for every instance on a send stream."""
        report = cls()
        report.degrees = _all_degrees(instance_byte_ranges(layout))
        return report

    def for_object(
        self, object_id: str, include_duplicates: bool = True
    ) -> List[Tuple[ResponseInstance, float]]:
        """All (instance, degree) pairs of one object, in serve order."""
        pairs = [
            (instance, degree)
            for instance, degree in self.degrees.items()
            if instance.object_id == object_id
            and (include_duplicates or not instance.duplicate)
        ]
        return sorted(pairs, key=lambda pair: pair[0].instance_id)

    def original_degree(self, object_id: str) -> Optional[float]:
        """Degree of the first (non-duplicate) serving, or None."""
        pairs = self.for_object(object_id, include_duplicates=False)
        return pairs[0][1] if pairs else None

    def min_degree(self, object_id: str) -> Optional[float]:
        """Lowest degree across all servings (duplicates included)."""
        pairs = self.for_object(object_id)
        return min((degree for _, degree in pairs), default=None)
