"""Partial-multiplexing inference (paper §VII, future work).

    "Another possible extension would be to infer the object identity
    even when the object is partly multiplexed.  Our preliminary
    experiments suggest that this is indeed possible, however, at the
    cost of employing complex analysis techniques."

When two or more objects interleave, the delimiter heuristic produces a
single merged burst.  This module implements the natural first attack
on that blob: treat its size as a subset-sum over the known object
inventory and enumerate small subsets whose combined expected wire size
falls within tolerance.  A unique explanation identifies the objects in
the blob (though not their byte order).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import ObjectEstimate
from repro.core.predictor import SizePredictor


@dataclass(frozen=True)
class BlobExplanation:
    """One candidate composition of a merged (multiplexed) burst."""

    object_ids: Tuple[str, ...]
    expected_payload: int
    observed_payload: int

    @property
    def error(self) -> int:
        return abs(self.observed_payload - self.expected_payload)


class PartialMultiplexingAnalyzer:
    """Explains multiplexed bursts as combinations of known objects."""

    def __init__(
        self,
        predictor: SizePredictor,
        max_objects_per_blob: int = 3,
        tolerance_abs: int = 700,
        tolerance_rel: float = 0.04,
    ) -> None:
        """
        Args:
            predictor: supplies per-object expected wire sizes.
            max_objects_per_blob: largest subset size enumerated; the
                combinatorics grow fast, and the paper notes the
                "innumerable ways in which objects can be multiplexed".
        """
        if max_objects_per_blob < 1:
            raise ValueError("must allow at least one object per blob")
        self.predictor = predictor
        self.max_objects = max_objects_per_blob
        self.tolerance_abs = tolerance_abs
        self.tolerance_rel = tolerance_rel

    def _within(self, observed: int, expected: int) -> bool:
        budget = max(self.tolerance_abs, self.tolerance_rel * expected)
        return abs(observed - expected) <= budget

    def explain(
        self,
        estimate: ObjectEstimate,
        candidates: Optional[Sequence[str]] = None,
    ) -> List[BlobExplanation]:
        """All subset explanations of one burst, best-first."""
        pool = list(candidates) if candidates is not None else list(
            self.predictor.size_map
        )
        explanations: List[BlobExplanation] = []
        for subset_size in range(1, self.max_objects + 1):
            for subset in itertools.combinations(pool, subset_size):
                expected = sum(
                    self.predictor.expected_for(object_id) for object_id in subset
                )
                if self._within(estimate.payload_bytes, expected):
                    explanations.append(
                        BlobExplanation(
                            object_ids=tuple(sorted(subset)),
                            expected_payload=expected,
                            observed_payload=estimate.payload_bytes,
                        )
                    )
        explanations.sort(key=lambda explanation: explanation.error)
        return explanations

    def identify_members(
        self,
        estimate: ObjectEstimate,
        candidates: Optional[Sequence[str]] = None,
    ) -> Optional[Tuple[str, ...]]:
        """The blob's membership, when the explanation is unambiguous.

        Returns the object ids only if every near-optimal explanation
        (within one tolerance budget of the best) agrees on membership.
        """
        explanations = self.explain(estimate, candidates)
        if not explanations:
            return None
        best = explanations[0]
        agreeing = [
            explanation
            for explanation in explanations
            if explanation.error <= best.error + self.tolerance_abs
        ]
        memberships = {explanation.object_ids for explanation in agreeing}
        if len(memberships) == 1:
            return best.object_ids
        return None
