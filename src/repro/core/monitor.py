"""The traffic monitor — the adversary's tshark.

Works purely from what an on-path observer has: packet timestamps,
directions, wire sizes, cleartext TCP header fields, and the cleartext
TLS record content types (the ``ssl.record.content_type == 23``
filter).  GET requests are recognized as client→server application-data
packets large enough to be HEADERS frames — HTTP/2 control chatter
(WINDOW_UPDATE, SETTINGS ACK, PING) rides in much smaller records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netsim.capture import CaptureLog, Direction, PacketRecord

#: Client→server application-data packets at or above this payload size
#: are counted as GET requests.  Control records are smaller: a
#: WINDOW_UPDATE record is 13 B of plaintext (≈42 B of TCP payload), a
#: SETTINGS ACK ≈38 B; a GET HEADERS record is ≥46 B of TCP payload
#: even for a repeated path with a hot HPACK table.
GET_PAYLOAD_THRESHOLD = 44

#: Client→server application bytes ignored before GET detection starts
#: (the preface record + client SETTINGS fingerprint, ≈103 B).
PREFACE_FLIGHT_BYTES = 120


@dataclass(frozen=True)
class GetRequestObservation:
    """One observed GET: its time and ordinal position."""

    index: int  # 1-based: "the 6th GET request"
    time: float
    payload_bytes: int


class TrafficMonitor:
    """Offline queries over a middlebox packet capture."""

    def __init__(
        self,
        capture: CaptureLog,
        get_payload_threshold: int = GET_PAYLOAD_THRESHOLD,
    ) -> None:
        self._capture = capture
        self.get_payload_threshold = get_payload_threshold

    @property
    def capture(self) -> CaptureLog:
        return self._capture

    def is_get_request(self, record: PacketRecord) -> bool:
        """The monitor's GET heuristic for one packet record."""
        return (
            record.direction is Direction.CLIENT_TO_SERVER
            and record.is_application_data
            and record.payload_bytes >= self.get_payload_threshold
        )

    def get_requests(self, since: float = 0.0) -> List[GetRequestObservation]:
        """All observed GETs in order.

        Retransmitted requests are excluded by sequence-number
        watermarking (old sequence numbers are visible in the clear),
        like tshark's retransmission analysis.
        """
        observations = []
        index = 0
        max_end_seq = -1
        preface_seen = 0
        for record in self._capture:
            if record.dropped_by_adversary:
                continue
            if (
                record.direction is not Direction.CLIENT_TO_SERVER
                or not record.is_application_data
            ):
                continue
            preface_before = preface_seen
            preface_seen += record.payload_bytes
            if preface_before < PREFACE_FLIGHT_BYTES:
                continue
            if record.payload_bytes < self.get_payload_threshold:
                continue
            end = record.seq + record.payload_bytes
            if max_end_seq < 0 or record.seq >= max_end_seq:
                index += 1
                max_end_seq = end
                if record.time >= since:
                    observations.append(
                        GetRequestObservation(
                            index, record.time, record.payload_bytes
                        )
                    )
            elif end > max_end_seq:
                max_end_seq = end
        return observations

    def nth_get_time(self, n: int) -> Optional[float]:
        """Timestamp of the n-th GET (1-based), or None."""
        for observation in self.get_requests():
            if observation.index == n:
                return observation.time
        return None

    def response_packets(self, since: float = 0.0) -> List[PacketRecord]:
        """Server→client application-stream packets (estimator input).

        Includes record-continuation packets (no visible record header)
        — the size side-channel sums every byte of a burst.
        """
        return [
            record
            for record in self._capture
            if record.time >= since
            and not record.dropped_by_adversary
            and record.direction is Direction.SERVER_TO_CLIENT
            and record.is_application_stream
        ]

    def request_packets(self, since: float = 0.0) -> List[PacketRecord]:
        """Client→server application-data packets."""
        return [
            record
            for record in self._capture.application_data(
                Direction.CLIENT_TO_SERVER
            )
            if record.time >= since
        ]

    def inter_get_gaps(self) -> List[float]:
        """Gaps between consecutive observed GETs (Table II's rows)."""
        times = [obs.time for obs in self.get_requests()]
        return [b - a for a, b in zip(times, times[1:])]

    def __repr__(self) -> str:
        return f"TrafficMonitor({len(self._capture)} packets)"
