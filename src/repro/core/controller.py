"""The network controller: the adversary's actuators (paper §IV).

Implements, as middlebox packet filters, each of the four network
manipulations the paper studies:

* :class:`UniformDelayFilter` — §IV-A's negative result: a constant
  delay on every packet cannot change inter-arrival times.
* :class:`SpacingFilter` — §IV-B's calculated jitter: hold GET
  requests so consecutive ones reach the server at least ``spacing``
  apart ("first request delayed 0 ms, second d ms, third 2d ms, …").
* :class:`RandomJitterFilter` — netem-style random per-packet jitter,
  for ablations.
* bandwidth throttling — via the middlebox token bucket (§IV-C).
* :class:`TargetedDropFilter` — §IV-D: drop a fraction of server→client
  application packets during an activation window to force the client
  into an HTTP/2 stream reset.

:class:`GetCounter` is the live counterpart of the traffic monitor: it
counts GET-like packets in flight so the attack can trigger phases
"as soon as the client sent the 6th GET request".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.netsim.capture import Direction
from repro.netsim.middlebox import Middlebox, PacketFilter, Verdict
from repro.netsim.packet import Packet
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog

#: Same GET heuristic the offline monitor uses (see repro.core.monitor):
#: a repeat GET with a hot HPACK table is ≈46 B of TCP payload, while
#: the largest HTTP/2 control record (WINDOW_UPDATE) is 42 B.
GET_PAYLOAD_THRESHOLD = 44

#: Cumulative client→server application bytes to ignore before GET
#: detection starts: the connection preface record plus the client
#: SETTINGS (≈103 B of TCP payload) form a fixed, fingerprint-able
#: browser signature that precedes every request.
PREFACE_FLIGHT_BYTES = 120


def is_get_like(packet: Packet, threshold: int = GET_PAYLOAD_THRESHOLD) -> bool:
    """Live GET detection from on-path-visible fields only."""
    segment = packet.segment
    if segment is None or packet.payload_bytes < threshold:
        return False
    records = getattr(segment, "tls_records", ()) or ()
    return any(getattr(record, "content_type", 0) == 23 for record in records)


class UniformDelayFilter:
    """Delay every packet in a direction by a constant (§IV-A).

    The paper's point: this shifts all arrivals equally, so the
    inter-arrival times at the server are unchanged and multiplexing is
    unaffected.  Kept for the delay-ablation experiment.
    """

    def __init__(self, delay: float, direction: Optional[Direction] = None) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay
        self.direction = direction
        self.enabled = True

    def classify(self, packet: Packet, direction: Direction, now: float) -> Verdict:
        if not self.enabled or (
            self.direction is not None and direction is not self.direction
        ):
            return Verdict.forward()
        return Verdict.delayed(self.delay)


class SpacingFilter:
    """Enforce a minimum inter-arrival spacing between GET requests.

    The paper's "calculated jitter" (§IV-B): the first request of a
    burst is delayed 0 ms, the second ``d`` ms, the third ``2d`` ms,
    and so on, so consecutive GETs reach the server at least
    ``spacing`` apart.  Requests already spaced naturally pass
    untouched.  Retransmitted requests match the same heuristic and are
    spaced too — the escalation the paper observes.

    ``noise_fraction`` models the actuator's imprecision (the gateway
    implements holds with tc/netem whose delay realization is not
    exact): each hold gets an extra uniform error of up to that
    fraction of the hold itself.  Long holds deep inside a request
    burst therefore wobble by tens of milliseconds — enough to reorder
    requests past each other and, at larger spacings, to hold a request
    beyond the client's RTO floor.  This is the source of the
    dup-ACK → fast-retransmit → duplicate-serving cascade of §IV-B;
    set it to 0 for a perfect actuator (the ablation study).
    """

    def __init__(
        self,
        spacing: float,
        threshold: int = GET_PAYLOAD_THRESHOLD,
        noise_fraction: float = 0.5,
        rng: Optional[RandomStreams] = None,
    ) -> None:
        if spacing < 0:
            raise ValueError("spacing must be non-negative")
        if noise_fraction < 0:
            raise ValueError("noise fraction must be non-negative")
        self.spacing = spacing
        self.threshold = threshold
        self.noise_fraction = noise_fraction
        self._rng = rng
        self.enabled = True
        self._last_release: Optional[float] = None
        self.delays_applied = 0
        self.total_delay = 0.0

    def set_spacing(self, spacing: float) -> None:
        """Retune mid-attack (phase 3 raises 50 ms → 80 ms)."""
        if spacing < 0:
            raise ValueError("spacing must be non-negative")
        self.spacing = spacing

    def _noise(self, delay: float) -> float:
        if self.noise_fraction == 0 or self._rng is None or delay <= 0:
            return 0.0
        return self._rng.uniform(
            "adversary.spacing_noise", 0.0, self.noise_fraction * delay
        )

    def classify(self, packet: Packet, direction: Direction, now: float) -> Verdict:
        if (
            not self.enabled
            or direction is not Direction.CLIENT_TO_SERVER
            or not is_get_like(packet, self.threshold)
        ):
            return Verdict.forward()
        if self._last_release is None or self.spacing == 0:
            self._last_release = now
            return Verdict.forward()
        release = max(now, self._last_release + self.spacing)
        self._last_release = release
        delay = release - now
        if delay <= 0:
            return Verdict.forward()
        delay += self._noise(delay)
        self.delays_applied += 1
        self.total_delay += delay
        return Verdict.delayed(delay)


class RandomJitterFilter:
    """netem-style jitter: uniform random delay in [0, 2·mean] per packet.

    This is what the paper's ``tc netem``-based network controller
    actually does, and its side effect is the attack's second-order
    story: independently delayed request packets **reorder**, the server
    dup-ACKs the resulting holes, the client fast-retransmits GETs it
    never lost, and the duplicate-serving quirk multiplies responses
    (§IV-B's "intensified multiplexing").

    The filter applies to every packet in its direction (like a netem
    qdisc); "increase in delay per request" in Table I is the mean.
    """

    def __init__(
        self,
        mean_delay: float,
        rng: RandomStreams,
        direction: Optional[Direction] = Direction.CLIENT_TO_SERVER,
        stream_name: str = "adversary.jitter",
    ) -> None:
        if mean_delay < 0:
            raise ValueError("jitter must be non-negative")
        self.mean_delay = mean_delay
        self.direction = direction
        self._rng = rng
        self._stream_name = stream_name
        self.enabled = True

    def set_mean(self, mean_delay: float) -> None:
        """Retune mid-attack (the §V escalation to 80 ms)."""
        if mean_delay < 0:
            raise ValueError("jitter must be non-negative")
        self.mean_delay = mean_delay

    def classify(self, packet: Packet, direction: Direction, now: float) -> Verdict:
        if not self.enabled or (
            self.direction is not None and direction is not self.direction
        ):
            return Verdict.forward()
        if self.mean_delay == 0:
            return Verdict.forward()
        return Verdict.delayed(
            self._rng.uniform(self._stream_name, 0.0, 2.0 * self.mean_delay)
        )


class TargetedDropFilter:
    """Drop a fraction of server→client application packets (§IV-D).

    Inactive until :meth:`activate`; deactivates itself after the
    configured window.  Only TLS application-data packets are dropped
    ("drops 80% application packets"); handshakes and pure ACKs pass.
    """

    def __init__(
        self,
        drop_rate: float,
        rng: RandomStreams,
        stream_name: str = "adversary.drops",
    ) -> None:
        if not (0.0 <= drop_rate <= 1.0):
            raise ValueError("drop rate must be in [0, 1]")
        self.drop_rate = drop_rate
        self._rng = rng
        self._stream_name = stream_name
        self._active_until: Optional[float] = None
        self.dropped = 0

    def activate(self, now: float, duration: float) -> None:
        """Start dropping for ``duration`` seconds."""
        self._active_until = now + duration

    def deactivate(self) -> None:
        self._active_until = None

    def active(self, now: float) -> bool:
        return self._active_until is not None and now <= self._active_until

    def classify(self, packet: Packet, direction: Direction, now: float) -> Verdict:
        if direction is not Direction.SERVER_TO_CLIENT or not self.active(now):
            return Verdict.forward()
        segment = packet.segment
        records = getattr(segment, "tls_records", ()) if segment else ()
        if not any(getattr(r, "content_type", 0) == 23 for r in records or ()):
            return Verdict.forward()
        if self._rng.stream(self._stream_name).random() < self.drop_rate:
            self.dropped += 1
            return Verdict.drop()
        return Verdict.forward()


class GetCounter:
    """Counts GET-like packets in flight and fires positional triggers.

    TCP retransmissions are excluded by tracking the highest sequence
    number counted so far — retransmitted requests carry old sequence
    numbers, which an on-path observer sees in the clear (tshark does
    the same de-duplication).
    """

    def __init__(self, threshold: int = GET_PAYLOAD_THRESHOLD) -> None:
        self.threshold = threshold
        self.count = 0
        self._max_end_seq = -1
        self._preface_seen = 0
        self._triggers: Dict[int, List[Callable[[float], None]]] = {}
        #: Invoked as ``on_get(count, now, payload_bytes)`` for every new
        #: (non-retransmitted) GET — the hook classifier triggers use.
        self.on_get: Optional[Callable[[int, float, int], None]] = None

    def at(self, n: int, callback: Callable[[float], None]) -> None:
        """Invoke ``callback(now)`` when the n-th GET (1-based) passes."""
        if n < 1:
            raise ValueError("GET positions are 1-based")
        self._triggers.setdefault(n, []).append(callback)

    def classify(self, packet: Packet, direction: Direction, now: float) -> Verdict:
        if direction is not Direction.CLIENT_TO_SERVER:
            return Verdict.forward()
        segment = packet.segment
        records = getattr(segment, "tls_records", ()) if segment else ()
        is_app = any(getattr(r, "content_type", 0) == 23 for r in records or ())
        if not is_app:
            return Verdict.forward()
        preface_before = self._preface_seen
        self._preface_seen += packet.payload_bytes
        if preface_before < PREFACE_FLIGHT_BYTES:
            return Verdict.forward()
        if packet.payload_bytes < self.threshold:
            return Verdict.forward()
        seq = int(getattr(segment, "seq", 0))
        end = seq + packet.payload_bytes
        if self._max_end_seq < 0 or seq >= self._max_end_seq:
            self.count += 1
            self._max_end_seq = end
            if self.on_get is not None:
                self.on_get(self.count, now, packet.payload_bytes)
            for callback in self._triggers.get(self.count, ()):
                callback(now)
        elif end > self._max_end_seq:
            # Partial overlap (coalesced retransmission carrying some
            # new data): advance the watermark without counting.
            self._max_end_seq = end
        return Verdict.forward()


class NetworkController:
    """Facade bundling the filters on one middlebox.

    The attack state machine drives this; experiments can also use it
    directly for single-parameter studies (Tables I, Figure 5).
    """

    def __init__(
        self,
        sim: Simulator,
        middlebox: Middlebox,
        rng: RandomStreams,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.middlebox = middlebox
        self.rng = rng
        self._trace = trace
        self.get_counter = GetCounter()
        self.spacing_filter: Optional[SpacingFilter] = None
        self.jitter_filter: Optional[RandomJitterFilter] = None
        self.drop_filter: Optional[TargetedDropFilter] = None
        middlebox.add_filter(Direction.CLIENT_TO_SERVER, self.get_counter)

    def install_jitter(self, mean_delay: float) -> RandomJitterFilter:
        """Install (or retune) netem-style client→server jitter — the
        paper's actual jitter mechanism."""
        if self.jitter_filter is None:
            self.jitter_filter = RandomJitterFilter(
                mean_delay, self.rng, Direction.CLIENT_TO_SERVER
            )
            self.middlebox.add_filter(
                Direction.CLIENT_TO_SERVER, self.jitter_filter
            )
        else:
            self.jitter_filter.set_mean(mean_delay)
        self._record("adversary.jitter", mean=mean_delay)
        return self.jitter_filter

    def install_spacing(
        self, spacing: float, noise_fraction: float = 0.5
    ) -> SpacingFilter:
        """Install (or retune) the calculated GET-spacing filter.

        ``noise_fraction=0`` gives a perfect actuator (ablation); the
        default models the tc/netem imprecision of the paper's gateway.
        """
        if self.spacing_filter is None:
            self.spacing_filter = SpacingFilter(
                spacing, noise_fraction=noise_fraction, rng=self.rng
            )
            self.middlebox.add_filter(
                Direction.CLIENT_TO_SERVER, self.spacing_filter
            )
        else:
            self.spacing_filter.set_spacing(spacing)
        self._record("adversary.spacing", spacing=spacing)
        return self.spacing_filter

    def limit_bandwidth(self, bits_per_second: Optional[float],
                        burst_bytes: int = 32 * 1024) -> None:
        """Throttle both directions (None lifts the limit)."""
        self.middlebox.set_bandwidth_limit(bits_per_second, burst_bytes)
        self._record("adversary.bandwidth", rate=bits_per_second)

    def install_drops(self, drop_rate: float) -> TargetedDropFilter:
        """Install the targeted s→c drop filter (inactive)."""
        if self.drop_filter is None:
            self.drop_filter = TargetedDropFilter(drop_rate, self.rng)
            self.middlebox.add_filter(
                Direction.SERVER_TO_CLIENT, self.drop_filter
            )
        else:
            self.drop_filter.drop_rate = drop_rate
        return self.drop_filter

    def start_drops(self, duration: float) -> None:
        """Activate the drop filter for ``duration`` seconds."""
        if self.drop_filter is None:
            raise RuntimeError("install_drops() first")
        self.drop_filter.activate(self.sim.now, duration)
        self._record(
            "adversary.drops_on",
            duration=duration,
            rate=self.drop_filter.drop_rate,
        )

    def install_uniform_delay(
        self, delay: float, direction: Optional[Direction] = None
    ) -> UniformDelayFilter:
        """Constant per-packet delay (the §IV-A negative result)."""
        delay_filter = UniformDelayFilter(delay, direction)
        if direction is None:
            for current in Direction:
                self.middlebox.add_filter(current, delay_filter)
        else:
            self.middlebox.add_filter(direction, delay_filter)
        return delay_filter

    def on_nth_get(self, n: int, callback: Callable[[float], None]) -> None:
        """Register a live trigger on the n-th forwarded GET."""
        self.get_counter.at(n, callback)

    def _record(self, category: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self.sim.now, category, **fields)
