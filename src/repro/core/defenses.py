"""Defenses sketched by the paper (§VII).

    "Several HTTP/2 features such as server push and prioritization
    that are not a function of the underlying network can be leveraged
    for privacy.  For instance, the client can opt for a different
    priority/order of object delivery every time, thereby confusing the
    adversary."

:class:`PriorityShuffleDefense` implements exactly that: per page load
it (a) randomizes the order in which equivalent objects are requested
(the 8 emblem images — the browser knows the display mapping, the
network does not), and (b) assigns random RFC 7540 priority weights so
a priority-honouring server also varies delivery order.  The ablation
benchmark shows the sequence attack's positional accuracy collapsing to
chance while single-object size identification survives — the defense
hides *order*, not *size*.

:class:`ServerPushDefense` implements the other §VII lever: the server
**pushes** the order-revealing objects in a fixed canonical order
attached to the page request, so the client never requests them and the
network order carries no information about the user's ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.simkernel.randomstream import RandomStreams
from repro.web.isidewith import IsideWithSite
from repro.web.site import LoadSchedule, ScheduledRequest


@dataclass
class PriorityShuffleDefense:
    """Randomize request order and priorities of fungible object groups.

    Attributes:
        shuffle_order: permute the image-burst request order.
        randomize_weights: attach random priority weights (1..256) to
            every request in the group.
    """

    shuffle_order: bool = True
    randomize_weights: bool = True

    def apply(
        self,
        site: IsideWithSite,
        rng: RandomStreams,
    ) -> Tuple[LoadSchedule, Tuple[str, ...]]:
        """Build a defended schedule for one page load.

        Returns:
            ``(schedule, wire_order)`` where ``wire_order`` is the party
            order actually requested on the network (the browser still
            *displays* the true ``site.party_order``; only the network
            ordering is shuffled).
        """
        requests: List[ScheduledRequest] = list(site.schedule)
        image_positions = list(site.image_indices)
        image_requests = [requests[index] for index in image_positions]

        if self.shuffle_order:
            shuffled = rng.shuffled("defense.image-order", image_requests)
        else:
            shuffled = list(image_requests)

        defended: List[ScheduledRequest] = []
        image_cursor = 0
        for index, request in enumerate(requests):
            if index in site.image_indices:
                source = shuffled[image_cursor]
                image_cursor += 1
                weight = (
                    rng.stream("defense.weights").randint(1, 256)
                    if self.randomize_weights
                    else source.priority_weight
                )
                # Keep the original slot's gap (and script-triggered
                # nature) so the timing signature of the burst is
                # unchanged; only identity moves.
                defended.append(
                    ScheduledRequest(
                        request.gap,
                        source.obj,
                        weight,
                        script_triggered=request.script_triggered,
                    )
                )
            else:
                defended.append(request)

        wire_order = tuple(
            request.obj.object_id.replace("emblem-", "")
            for request in defended
            if request.obj.object_id.startswith("emblem-")
        )
        return LoadSchedule(defended), wire_order


@dataclass
class ServerPushDefense:
    """Push the order-revealing objects in a canonical order (§VII).

    The server attaches PUSH_PROMISEs for all 8 emblem images — in a
    *fixed, user-independent* order — to the result-HTML response.  The
    client never requests them, so neither the request sequence nor the
    delivery sequence on the wire correlates with the user's ranking.
    Sizes remain visible (an adversary can tell *which* emblems the page
    shows — identical for every user of this survey), but the secret —
    the order — is gone.
    """

    #: Push the emblems sorted by path (alphabetical party order).
    canonical_by_path: bool = True

    def push_map(self, site: IsideWithSite) -> Dict[str, Tuple[str, ...]]:
        """The ServerConfig.push_map for a defended deployment."""
        html_path = site.schedule[site.html_index].obj.path
        emblem_paths = [
            site.schedule[index].obj.path for index in site.image_indices
        ]
        if self.canonical_by_path:
            emblem_paths = sorted(emblem_paths)
        return {html_path: tuple(emblem_paths)}

    def canonical_order(self, site: IsideWithSite) -> Tuple[str, ...]:
        """The party order the wire reveals under this defense."""
        emblem_paths = self.push_map(site)[
            site.schedule[site.html_index].obj.path
        ]
        return tuple(
            path.rsplit("/", 1)[-1].replace(".png", "")
            for path in emblem_paths
        )
