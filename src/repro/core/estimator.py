"""Passive object-size estimation from encrypted traffic (Figure 1).

The classic HTTP/1.x side-channel the paper resurrects: walk the
server→client application-data packets and split them into objects at
*delimiters* — packets smaller than the MTU ("the last packet with size
that is less than (rarely equal to) the MTU") — and at idle gaps.  Sum
the payload bytes between delimiters to estimate each object's size.

Against multiplexed traffic these estimates are garbage (interleaved
objects merge); once the adversary serializes transmission they are
accurate — that asymmetry is the whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.netsim.capture import PacketRecord


@dataclass(frozen=True)
class ObjectEstimate:
    """One inferred object transmission.

    Attributes:
        start_time / end_time: first and last packet timestamps.
        payload_bytes: summed TCP payload (TLS records, encrypted).
        packets: packets attributed to the object.
        record_starts: TLS records beginning inside the burst (visible
            from cleartext record headers) — used to back out framing
            overhead when converting to an application-size estimate.
    """

    start_time: float
    end_time: float
    payload_bytes: int
    packets: int
    record_starts: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class SizeEstimator:
    """Segments a response packet stream into object-size estimates.

    An object boundary is declared when

    * a sub-MTU packet (the classic delimiter) is followed by at least
      ``delimiter_gap`` of silence — a bare sub-MTU packet is not
      enough, because a sender whose application trickles data emits
      sub-MTU packets mid-object; or
    * the silence exceeds ``idle_gap`` regardless of the last packet's
      size — catching objects that happen to end on an MTU boundary
      and transfers cut off by loss.

    Congestion-window stalls inside a transfer (≈ one RTT of silence
    after a *full*-MTU packet) split neither way, so multi-round-trip
    transfers stay whole.
    """

    def __init__(
        self,
        mtu: int = 1500,
        delimiter_gap: float = 0.005,
        idle_gap: float = 0.060,
        min_object_bytes: int = 400,
    ) -> None:
        """
        Args:
            mtu: link MTU; packets below it are candidate delimiters.
            delimiter_gap: silence required after a sub-MTU packet to
                call it an object end.
            idle_gap: silence that closes an object unconditionally.
            min_object_bytes: bursts smaller than this are discarded as
                control chatter (SETTINGS, WINDOW_UPDATE, PING traffic).
        """
        if delimiter_gap > idle_gap:
            raise ValueError("delimiter gap must not exceed idle gap")
        self.mtu = mtu
        self.delimiter_gap = delimiter_gap
        self.idle_gap = idle_gap
        self.min_object_bytes = min_object_bytes

    def estimate(
        self,
        packets: Sequence[PacketRecord],
        request_times: Optional[Sequence[float]] = None,
    ) -> List[ObjectEstimate]:
        """Split ``packets`` (time-ordered s→c application data) into
        object estimates.

        Args:
            packets: the response-direction application packets.
            request_times: optional client→server request timestamps;
                a sub-MTU packet followed by a request before the next
                response packet also closes an object.  This is the
                classic HTTP/1.x trick — the next GET delimits the
                previous response — and is what lets the estimator
                separate back-to-back keep-alive responses whose gap is
                only one RTT.
        """
        request_times = sorted(request_times or ())
        estimates: List[ObjectEstimate] = []
        current: List[PacketRecord] = []

        def request_between(start: float, end: float) -> bool:
            import bisect
            index = bisect.bisect_right(request_times, start)
            return index < len(request_times) and request_times[index] < end

        def close() -> None:
            if not current:
                return
            payload = sum(record.payload_bytes for record in current)
            if payload >= self.min_object_bytes:
                estimates.append(
                    ObjectEstimate(
                        start_time=current[0].time,
                        end_time=current[-1].time,
                        payload_bytes=payload,
                        packets=len(current),
                        record_starts=sum(
                            len(record.tls_content_types) for record in current
                        ),
                    )
                )
            current.clear()

        for index, record in enumerate(packets):
            current.append(record)
            next_time = (
                packets[index + 1].time if index + 1 < len(packets) else None
            )
            silence = (
                float("inf") if next_time is None else next_time - record.time
            )
            is_delimiter = record.wire_size < self.mtu
            request_cut = (
                is_delimiter
                and next_time is not None
                and request_between(record.time, next_time)
            )
            if silence > self.idle_gap or (
                is_delimiter and silence > self.delimiter_gap
            ) or request_cut:
                close()
        close()
        return estimates

    def __repr__(self) -> str:
        return (
            f"SizeEstimator(mtu={self.mtu}, idle_gap={self.idle_gap}, "
            f"min={self.min_object_bytes})"
        )
