"""repro — reproduction of "Depending on HTTP/2 for Privacy? Good Luck!"
(Mitra et al., DSN 2020).

An active traffic-analysis attack on HTTP/2 multiplexing, rebuilt on a
deterministic discrete-event network testbed:

* :mod:`repro.simkernel` — event-driven simulation kernel,
* :mod:`repro.netsim` — links, hosts and the programmable middlebox,
* :mod:`repro.tcp` — TCP (Reno, fast retransmit, RTO backoff),
* :mod:`repro.tls` — the TLS record layer as a size model,
* :mod:`repro.hpack` — HPACK header compression sizing,
* :mod:`repro.h2` — HTTP/2 framing, streams and multiplexing,
* :mod:`repro.h1` — the sequential HTTP/1.1 baseline,
* :mod:`repro.web` — the isidewith.com replica and browser model,
* :mod:`repro.core` — **the paper's contribution**: the adversary,
* :mod:`repro.experiments` — one module per paper table/figure,
* :mod:`repro.profiling` — hot-path counters/timers (``--profile``).

Quick start::

    from repro import quick_attack

    result = quick_attack(trial=0)
    print(result.sequence_prediction)   # recovered party order
    print(result.sequence_truth)        # ground truth
"""

from repro import profiling
from repro.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.core.adversary import Adversary, AdversaryConfig
from repro.core.sequence import SequenceAttackResult
from repro.experiments.executor import (
    FaultTolerance,
    TrialError,
    TrialExecutor,
)
from repro.experiments.harness import (
    TrialConfig,
    TrialResult,
    TrialSummary,
    run_trial,
    summarize_trial,
)
from repro.netsim.faults import FaultSchedule
from repro.web.workload import PopulationWorkload, VolunteerWorkload

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "AdversaryConfig",
    "CampaignConfig",
    "CampaignResult",
    "FaultSchedule",
    "FaultTolerance",
    "SequenceAttackResult",
    "TrialConfig",
    "TrialError",
    "TrialExecutor",
    "TrialResult",
    "TrialSummary",
    "PopulationWorkload",
    "VolunteerWorkload",
    "profiling",
    "quick_attack",
    "run_campaign",
    "run_trial",
    "summarize_trial",
]


def quick_attack(
    trial: int = 0,
    seed: int = 7,
    adversary: "AdversaryConfig" = None,
) -> "SequenceAttackResult":
    """Run one attacked isidewith session and return the analysis.

    Args:
        trial: volunteer index (selects the ground-truth party order).
        seed: workload master seed.
        adversary: attack parameters; defaults to the paper's §V values.

    Returns:
        The scored :class:`~repro.core.sequence.SequenceAttackResult`.
    """
    workload = VolunteerWorkload(seed=seed)
    config = TrialConfig(adversary=adversary or AdversaryConfig())
    outcome = run_trial(trial, workload, config)
    return outcome.analyze()
