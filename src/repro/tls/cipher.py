"""Cipher suites as size models.

Encryption itself is irrelevant to the attack; what matters is how many
bytes a record of a given plaintext length occupies on the wire.  Each
:class:`CipherSpec` captures the per-record ciphertext expansion of one
AEAD construction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CipherSpec:
    """Size model of one cipher suite.

    Attributes:
        name: IANA-style suite name, for display.
        per_record_overhead: ciphertext bytes added to each record's
            plaintext (nonces, tags, inner content type), excluding the
            5-byte record header.
    """

    name: str
    per_record_overhead: int

    def __post_init__(self) -> None:
        if self.per_record_overhead < 0:
            raise ValueError("overhead must be non-negative")

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Bytes of ciphertext for a record of the given plaintext size."""
        if plaintext_length < 0:
            raise ValueError("plaintext length must be non-negative")
        return plaintext_length + self.per_record_overhead


#: TLS 1.2 AES-128-GCM: 8-byte explicit nonce plus 16-byte tag.
AES_128_GCM_TLS12 = CipherSpec("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", 24)

#: TLS 1.3 AES-128-GCM: 16-byte tag plus 1-byte inner content type.
AES_128_GCM_TLS13 = CipherSpec("TLS_AES_128_GCM_SHA256", 17)
