"""TLS sessions over a simulated transport connection.

The session performs a size-realistic handshake (ClientHello,
ServerHello + certificate chain, Finished messages), then carries
application payloads — HTTP/2 frames — each wrapped in one or more
records of at most :data:`~repro.tls.record.MAX_PLAINTEXT_FRAGMENT`
plaintext bytes.

Duplicate deliveries from the TCP quirk (retransmitted request
segments) are passed through with a ``duplicate=True`` flag so the
HTTP/2 server model can reproduce the paper's re-serving behaviour.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional

from repro.simkernel.trace import TraceLog
from repro.transport.base import Transport
from repro.tls.cipher import AES_128_GCM_TLS12, CipherSpec
from repro.tls.record import (
    APPLICATION_DATA,
    HANDSHAKE,
    MAX_PLAINTEXT_FRAGMENT,
    TLSRecord,
    padded_length,
)

#: Size-realistic handshake message lengths (bytes of plaintext).
CLIENT_HELLO_BYTES = 320
SERVER_HELLO_BYTES = 3100  # ServerHello + certificate chain + key share
CLIENT_FINISHED_BYTES = 90
SERVER_FINISHED_BYTES = 90


class TLSRole(enum.Enum):
    CLIENT = "client"
    SERVER = "server"


class _HandshakeMessage:
    """Opaque payload object for handshake records."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"_HandshakeMessage({self.name})"


class _ChaffMessage:
    """Opaque payload of a defense chaff record.

    The receiving session discards these before the HTTP/2 layer ever
    sees them — to the application, chaff does not exist; to the
    on-path observer, it is indistinguishable application data.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "_ChaffMessage()"


class TLSSession:
    """One endpoint of a TLS channel layered on a transport.

    Callbacks:
        on_handshake_complete: the channel is ready for application data.
        on_application_record(payload, duplicate): a full application
            record arrived; ``payload`` is the opaque object the peer
            sent (an HTTP/2 frame).

    Defense knobs:
        pad_block: pad every application fragment's plaintext up to this
            block boundary before sealing the record (0 disables) — the
            per-record padding defense.  Must divide the plaintext
            ceiling so a maximal fragment stays legal.
        ``send_chaff()`` emits dummy application records the peer's
        session silently discards (counted, never delivered upward).
    """

    def __init__(
        self,
        connection: Transport,
        role: TLSRole,
        cipher: CipherSpec = AES_128_GCM_TLS12,
        trace: Optional[TraceLog] = None,
        pad_block: int = 0,
    ) -> None:
        if pad_block < 0:
            raise ValueError("pad_block must be non-negative")
        if pad_block > 1 and MAX_PLAINTEXT_FRAGMENT % pad_block:
            raise ValueError(
                f"pad_block {pad_block} must divide {MAX_PLAINTEXT_FRAGMENT}"
            )
        self._connection = connection
        self.role = role
        self.cipher = cipher
        self._trace = trace
        self.pad_block = pad_block
        #: Defense cost/volume accounting (integers).
        self.padding_bytes_sent = 0
        self.chaff_records_sent = 0
        self.chaff_records_received = 0
        self.handshake_complete = False
        self.on_handshake_complete: Optional[Callable[[], None]] = None
        self.on_application_record: Optional[Callable[[Any, bool], None]] = None

        self._sent_hello = False
        self._sent_finished = False
        connection.on_message = self._on_tcp_message
        previous_established = connection.on_established
        if role is TLSRole.CLIENT:
            def start_handshake() -> None:
                if previous_established:
                    previous_established()
                self._send_client_hello()
            connection.on_established = start_handshake

    @property
    def connection(self) -> Transport:
        return self._connection

    # Sending ------------------------------------------------------------

    def send_application(self, payload: Any, length: int) -> List[TLSRecord]:
        """Encrypt-and-send ``payload`` (``length`` plaintext bytes).

        Fragments into records of at most the maximum plaintext size;
        every fragment references the same payload object, and only the
        final fragment marks payload completion for the receiver.

        Returns the records written, in order.
        """
        if not self.handshake_complete:
            raise RuntimeError("application data before handshake completion")
        if length <= 0:
            raise ValueError(f"payload length must be positive, got {length}")
        records = []
        remaining = length
        while remaining > 0:
            fragment = min(remaining, MAX_PLAINTEXT_FRAGMENT)
            remaining -= fragment
            sealed = padded_length(fragment, self.pad_block)
            self.padding_bytes_sent += sealed - fragment
            record = TLSRecord(
                content_type=APPLICATION_DATA,
                plaintext_length=sealed,
                cipher=self.cipher,
                payload=payload if remaining == 0 else _Fragment(payload),
            )
            records.append(record)
            self._connection.send_message(record, record.wire_length)
        if self._trace is not None:
            self._trace.record(
                self._connection.sim.now,
                "tls.send",
                role=self.role.value,
                records=len(records),
                plaintext=length,
            )
        return records

    def send_chaff(self, length: int) -> TLSRecord:
        """Emit one dummy application record (the chaff defense).

        The plaintext length is padded like real traffic; the peer's
        session counts and drops it before the application layer.
        """
        if not self.handshake_complete:
            raise RuntimeError("chaff before handshake completion")
        if length <= 0:
            raise ValueError(f"chaff length must be positive, got {length}")
        sealed = padded_length(
            min(length, MAX_PLAINTEXT_FRAGMENT), self.pad_block
        )
        record = TLSRecord(
            content_type=APPLICATION_DATA,
            plaintext_length=sealed,
            cipher=self.cipher,
            payload=_ChaffMessage(),
        )
        self.chaff_records_sent += 1
        self._connection.send_message(record, record.wire_length)
        if self._trace is not None:
            self._trace.record(
                self._connection.sim.now,
                "tls.chaff",
                role=self.role.value,
                plaintext=sealed,
            )
        return record

    # Handshake ----------------------------------------------------------

    def _send_handshake_record(self, name: str, length: int) -> None:
        remaining = length
        while remaining > 0:
            fragment = min(remaining, MAX_PLAINTEXT_FRAGMENT)
            remaining -= fragment
            record = TLSRecord(
                content_type=HANDSHAKE,
                plaintext_length=fragment,
                cipher=self.cipher,
                payload=_HandshakeMessage(name),
            )
            self._connection.send_message(record, record.wire_length)

    def _send_client_hello(self) -> None:
        if self._sent_hello:
            return
        self._sent_hello = True
        self._send_handshake_record("ClientHello", CLIENT_HELLO_BYTES)

    def _on_tcp_message(self, message: Any, duplicate: bool) -> None:
        if not isinstance(message, TLSRecord):
            raise TypeError(f"non-TLS message on TLS session: {message!r}")
        if message.content_type == HANDSHAKE:
            if not duplicate:
                self._on_handshake_record(message)
            return
        if message.content_type == APPLICATION_DATA:
            if not self.handshake_complete:
                # Early data is not modelled; treat as protocol error.
                raise RuntimeError("application data before handshake finished")
            payload = message.payload
            if isinstance(payload, _ChaffMessage):
                self.chaff_records_received += 1
                return  # Chaff never reaches the application layer.
            if isinstance(payload, _Fragment):
                return  # Only the final fragment completes the payload.
            if self.on_application_record:
                self.on_application_record(payload, duplicate)

    def _on_handshake_record(self, record: TLSRecord) -> None:
        name = getattr(record.payload, "name", "")
        if self.role is TLSRole.SERVER:
            if name == "ClientHello":
                self._send_handshake_record("ServerHello", SERVER_HELLO_BYTES)
            elif name == "Finished" and not self._sent_finished:
                self._sent_finished = True
                self._send_handshake_record("Finished", SERVER_FINISHED_BYTES)
                self._complete_handshake()
        else:
            if name == "ServerHello" and not self._sent_finished:
                self._sent_finished = True
                self._send_handshake_record("Finished", CLIENT_FINISHED_BYTES)
            elif name == "Finished":
                self._complete_handshake()

    def _complete_handshake(self) -> None:
        if self.handshake_complete:
            return
        self.handshake_complete = True
        if self.on_handshake_complete:
            self.on_handshake_complete()


class _Fragment:
    """Marker payload for non-final fragments of a large application
    payload; carries the original for ground-truth accounting."""

    __slots__ = ("original",)

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:
        return f"_Fragment({self.original!r})"
