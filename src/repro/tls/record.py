"""TLS records.

A record's 5-byte header — content type, version, length — travels in
the clear; this is the only thing (besides sizes and timing) the
adversary reads, via the ``ssl.record.content_type == 23`` filter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.tls.cipher import AES_128_GCM_TLS12, CipherSpec

#: Record header: content type (1) + version (2) + length (2).
TLS_RECORD_HEADER_BYTES = 5

#: Maximum plaintext bytes per record (RFC 8446 §5.1).
MAX_PLAINTEXT_FRAGMENT = 16384

# Content types (RFC 5246 / RFC 8446).
CHANGE_CIPHER_SPEC = 20
ALERT = 21
HANDSHAKE = 22
APPLICATION_DATA = 23

_record_ids = itertools.count(1)


def padded_length(length: int, block: int) -> int:
    """Plaintext length after padding ``length`` up to a ``block`` boundary.

    The padding-defense contract (relied on by both the live
    :class:`~repro.tls.session.TLSSession` padding path and the analytic
    observation model in :mod:`repro.infer`):

    * never below the original length;
    * an exact multiple of ``block`` (for ``block > 1``);
    * ``block <= 1`` (or 0) disables padding entirely.

    Callers enforcing the record-size ceiling must pick a ``block`` that
    divides :data:`MAX_PLAINTEXT_FRAGMENT`, so a maximal fragment stays
    representable after padding.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if block <= 1:
        return length
    return length + (-length % block)


@dataclass
class TLSRecord:
    """One TLS record: cleartext header plus opaque encrypted payload.

    Attributes:
        content_type: cleartext record type (23 = application data).
        plaintext_length: bytes of plaintext protected by this record.
        cipher: the suite determining ciphertext expansion.
        payload: the plaintext object (an HTTP/2 frame) — opaque to any
            on-path observer, used only by the receiving endpoint and by
            ground-truth accounting.
        record_id: unique id for bookkeeping.
    """

    content_type: int
    plaintext_length: int
    cipher: CipherSpec = AES_128_GCM_TLS12
    payload: Any = None
    record_id: int = field(default_factory=lambda: next(_record_ids))

    def __post_init__(self) -> None:
        if not (0 < self.plaintext_length <= MAX_PLAINTEXT_FRAGMENT):
            raise ValueError(
                f"plaintext length {self.plaintext_length} outside "
                f"(0, {MAX_PLAINTEXT_FRAGMENT}]"
            )
        if self.content_type not in (
            CHANGE_CIPHER_SPEC,
            ALERT,
            HANDSHAKE,
            APPLICATION_DATA,
        ):
            raise ValueError(f"unknown content type {self.content_type}")

    @property
    def wire_length(self) -> int:
        """Total bytes this record occupies in the TCP stream."""
        return TLS_RECORD_HEADER_BYTES + self.cipher.ciphertext_length(
            self.plaintext_length
        )

    @property
    def is_application_data(self) -> bool:
        return self.content_type == APPLICATION_DATA

    def __repr__(self) -> str:
        return (
            f"TLSRecord(#{self.record_id} type={self.content_type} "
            f"pt={self.plaintext_length} wire={self.wire_length})"
        )
