"""TLS record layer (size-accurate model).

The adversary never sees plaintext, so this layer models exactly what
matters on the wire: record framing (5-byte header with a cleartext
content type), per-record AEAD ciphertext expansion, the maximum
plaintext fragment size, and a size-realistic handshake exchange.
Payloads stay opaque Python objects.
"""

from repro.tls.cipher import (
    AES_128_GCM_TLS12,
    AES_128_GCM_TLS13,
    CipherSpec,
)
from repro.tls.record import (
    ALERT,
    APPLICATION_DATA,
    CHANGE_CIPHER_SPEC,
    HANDSHAKE,
    MAX_PLAINTEXT_FRAGMENT,
    TLS_RECORD_HEADER_BYTES,
    TLSRecord,
)
from repro.tls.session import TLSRole, TLSSession

__all__ = [
    "AES_128_GCM_TLS12",
    "AES_128_GCM_TLS13",
    "ALERT",
    "APPLICATION_DATA",
    "CHANGE_CIPHER_SPEC",
    "CipherSpec",
    "HANDSHAKE",
    "MAX_PLAINTEXT_FRAGMENT",
    "TLSRecord",
    "TLSRole",
    "TLSSession",
    "TLS_RECORD_HEADER_BYTES",
]
