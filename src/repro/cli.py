"""Command-line interface: ``python -m repro <experiment> [options]``.

Runs any of the paper's experiments and prints its table:

    python -m repro baseline --trials 30
    python -m repro table1 --trials 100
    python -m repro table2 --trials 50 --seed 11
    python -m repro fig1
    python -m repro fig5
    python -m repro fig6
    python -m repro delay
    python -m repro ablations          # all five E8 studies
    python -m repro attack --trial 3   # one annotated session
    python -m repro table1 --trials 100 --workers 8   # parallel trials
    python -m repro infer-study --trials 12           # E19 frontier
    python -m repro infer --sessions 500 --workers 8  # frontier at scale

Worker processes (``--workers`` / ``REPRO_WORKERS``) parallelize trial
execution; results are bit-identical for any worker count.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Depending on HTTP/2 for Privacy? Good Luck!' "
            "(DSN 2020) — run the paper's experiments."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "baseline", "table1", "table2", "fig1", "fig5", "fig6",
            "delay", "ablations", "attack", "trigger", "streaming",
            "partialmux", "generalization", "fingerprint", "scorecard",
            "transport-study", "profile", "robustness-study", "verify",
            "campaign", "chaos", "infer-study", "infer",
        ],
        help="which paper experiment to run (`verify` for the "
             "conformance & golden-master harness, `campaign` for the "
             "population-scale sharded campaign engine, `chaos` for the "
             "fault-injection recovery scenarios, `infer-study` for the "
             "E19 inference-vs-defenses frontier, `infer` for the same "
             "frontier at campaign scale)",
    )
    parser.add_argument(
        "--trials", type=int, default=25,
        help="page loads per configuration (paper: 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload master seed"
    )
    parser.add_argument(
        "--trial", type=int, default=None,
        help="volunteer index (attack experiment only)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "worker processes for trial execution (default: the "
            "REPRO_WORKERS environment variable, else 1 = serial); "
            "results are identical for any worker count"
        ),
    )
    parser.add_argument(
        "--backend", choices=["python", "fast"], default=None,
        help=(
            "execution backend (default: the REPRO_BACKEND environment "
            "variable, else python): `fast` vectorizes analytic campaign "
            "shards with numpy and batches homogeneous simulator event "
            "runs; all outputs are bit-identical across backends"
        ),
    )
    parser.add_argument(
        "--transport", choices=["tcp", "quic"], default=None,
        help=(
            "transport layer under TLS/HTTP (default: the REPRO_TRANSPORT "
            "environment variable, else tcp): `tcp` is the paper's "
            "single-byte-stream transport whose head-of-line blocking the "
            "attack exploits; `quic` is a QUIC-like datagram transport "
            "with independent per-stream loss recovery"
        ),
    )
    robustness = parser.add_argument_group(
        "robustness-study options",
        "fault-intensity sweep with the fault-tolerant executor",
    )
    robustness.add_argument(
        "--quick", action="store_true",
        help="reduced run for CI: robustness-study sweeps 3 intensity "
             "levels with 3 trials each; verify runs the conformance "
             "vectors, a 3-experiment golden subset and one "
             "determinism-matrix cell",
    )
    robustness.add_argument(
        "--levels", type=str, default=None,
        help="comma-separated fault intensities in [0, 1] to sweep",
    )
    robustness.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help=(
            "JSON checkpoint file; completed trials stream into it and a "
            "re-run with the same file resumes instead of recomputing"
        ),
    )
    robustness.add_argument(
        "--json", type=str, default=None, metavar="PATH", dest="json_out",
        help="also write the study/campaign result as JSON to this path "
             "(robustness-study, campaign and infer)",
    )
    robustness.add_argument(
        "--trial-timeout", type=float, default=None,
        help="per-trial wall-clock budget in seconds (default 300)",
    )
    robustness.add_argument(
        "--trial-retries", type=int, default=None,
        help="same-seed retries per crashed/hung/failed trial (default 1)",
    )
    campaign = parser.add_argument_group(
        "campaign options",
        "population-scale sharded campaign engine (`repro campaign`)",
    )
    campaign.add_argument(
        "--sessions", type=int, default=None,
        help="total seeded sessions in the campaign "
             "(default 100000; infer: 2000)",
    )
    campaign.add_argument(
        "--shard-size", type=int, default=None,
        help="consecutive sessions per shard; peak memory scales with "
             "sessions/shard-size, not with sessions "
             "(default 2000; infer: 250)",
    )
    campaign.add_argument(
        "--mode", choices=["analytic", "full"], default=None,
        help="session engine: closed-form analytic evaluation (fast, "
             "the default) or the complete packet-level simulation",
    )
    campaign.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        help="stream completed shard summaries into a checkpoint here; "
             "re-running the same campaign (or infer run) resumes "
             "bit-identically",
    )
    campaign.add_argument(
        "--max-objects", type=int, default=None,
        help="upper bound of the zipf per-page object count "
             "(campaign default 96); for infer-study/infer: classes "
             "per page (defaults 8 / 6)",
    )
    campaign.add_argument(
        "--count-exponent", type=float, default=None,
        help="zipf exponent of the page object-count draw (default 0.9)",
    )
    campaign.add_argument(
        "--size-exponent", type=float, default=None,
        help="rank-size exponent of object sizes (default 1.1)",
    )
    campaign.add_argument(
        "--allow-partial", action="store_true",
        help="when shards exhaust their retries, return a partial result "
             "with explicit coverage accounting (exit code 3) instead of "
             "failing the run",
    )
    campaign.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole campaign; shards unfinished "
             "at expiry are skipped (resumable from the checkpoint later)",
    )
    campaign.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="hung-shard watchdog: kill and retry a supervised worker "
             "whose shard has been silent for this long",
    )
    campaign.add_argument(
        "--failure-manifest", type=str, default=None, metavar="PATH",
        help="write a machine-readable JSON failure manifest here on "
             "every supervised outcome (complete, partial or failed)",
    )
    infer = parser.add_argument_group(
        "infer options",
        "statistical size inference vs defenses "
        "(`repro infer-study` and `repro infer`)",
    )
    infer.add_argument(
        "--reps", type=int, default=None,
        help="attacker training fetches per object "
             "(default: 3 for infer-study, 2 for infer)",
    )
    infer.add_argument(
        "--defenses", type=str, default=None, metavar="NAMES",
        help="comma-separated defense-level names to sweep, ladder order "
             "(default: all registered levels)",
    )
    infer.add_argument(
        "--classifiers", type=str, default=None, metavar="NAMES",
        help="comma-separated classifier registry names to evaluate "
             "(default: all registered classifiers)",
    )
    chaos = parser.add_argument_group(
        "chaos options",
        "fault-injection recovery scenarios (`repro chaos`)",
    )
    chaos.add_argument(
        "--scenario", type=str, default=None, metavar="NAMES",
        help="comma-separated chaos scenario names to run (default: all; "
             "--quick runs the fast CI subset)",
    )
    verify = parser.add_argument_group(
        "verify options",
        "conformance vectors, golden masters and the determinism matrix",
    )
    verify.add_argument(
        "--update-golden", action="store_true",
        help="regenerate src/repro/conform/golden.json from the current "
             "tree instead of comparing against it",
    )
    verify.add_argument(
        "--only", type=str, default=None, metavar="NAMES",
        help="comma-separated golden experiment names to restrict the "
             "golden/matrix layers to",
    )
    verify.add_argument(
        "--fuzz-examples", type=int, default=200,
        help="deterministic round-trip fuzz examples per suite "
             "(default 200)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "collect per-subsystem counters and wall-clock timers while "
            "the experiment runs; the report goes to stderr, so stdout "
            "(the experiment table) stays byte-identical"
        ),
    )
    return parser


def _validate_args(parser: argparse.ArgumentParser, args) -> None:
    """Reject incoherent flag/experiment combinations (exit code 2).

    Scoped flags used to be silently ignored outside their experiment —
    a ``--trial 3`` typo on ``table1`` ran 25 ordinary trials without a
    word.  Now every scoped flag names the experiment it needs.
    """
    if args.trial is not None and args.experiment != "attack":
        parser.error(
            f"--trial only applies to the attack experiment "
            f"(got experiment {args.experiment!r})"
        )
    robustness_only = (
        ("--levels", args.levels is not None),
        ("--checkpoint", args.checkpoint is not None),
        ("--trial-timeout", args.trial_timeout is not None),
        ("--trial-retries", args.trial_retries is not None),
    )
    for flag, given in robustness_only:
        if given and args.experiment != "robustness-study":
            parser.error(
                f"{flag} only applies to the robustness-study experiment "
                f"(got experiment {args.experiment!r})"
            )
    if args.json_out is not None and args.experiment not in (
        "robustness-study", "campaign", "infer"
    ):
        parser.error(
            f"--json only applies to robustness-study, campaign and infer "
            f"(got experiment {args.experiment!r})"
        )
    sharded = (
        ("--sessions", args.sessions is not None),
        ("--shard-size", args.shard_size is not None),
        ("--checkpoint-dir", args.checkpoint_dir is not None),
    )
    for flag, given in sharded:
        if given and args.experiment not in ("campaign", "infer"):
            parser.error(
                f"{flag} only applies to campaign and infer "
                f"(got experiment {args.experiment!r})"
            )
    if args.max_objects is not None and args.experiment not in (
        "campaign", "infer", "infer-study"
    ):
        parser.error(
            f"--max-objects only applies to campaign, infer and "
            f"infer-study (got experiment {args.experiment!r})"
        )
    campaign_only = (
        ("--mode", args.mode is not None),
        ("--count-exponent", args.count_exponent is not None),
        ("--size-exponent", args.size_exponent is not None),
        ("--allow-partial", args.allow_partial),
        ("--deadline", args.deadline is not None),
        ("--heartbeat-timeout", args.heartbeat_timeout is not None),
        ("--failure-manifest", args.failure_manifest is not None),
    )
    for flag, given in campaign_only:
        if given and args.experiment != "campaign":
            parser.error(
                f"{flag} only applies to the campaign experiment "
                f"(got experiment {args.experiment!r})"
            )
    infer_only = (
        ("--reps", args.reps is not None),
        ("--defenses", args.defenses is not None),
        ("--classifiers", args.classifiers is not None),
    )
    for flag, given in infer_only:
        if given and args.experiment not in ("infer-study", "infer"):
            parser.error(
                f"{flag} only applies to infer-study and infer "
                f"(got experiment {args.experiment!r})"
            )
    if args.scenario is not None and args.experiment != "chaos":
        parser.error(
            f"--scenario only applies to chaos "
            f"(got experiment {args.experiment!r})"
        )
    if args.quick and args.experiment not in (
        "robustness-study", "verify", "chaos"
    ):
        parser.error(
            f"--quick only applies to robustness-study, verify and chaos "
            f"(got experiment {args.experiment!r})"
        )
    verify_only = (
        ("--update-golden", args.update_golden),
        ("--only", args.only is not None),
    )
    for flag, given in verify_only:
        if given and args.experiment != "verify":
            parser.error(
                f"{flag} only applies to verify "
                f"(got experiment {args.experiment!r})"
            )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)

    if args.backend is not None:
        # Export the choice so spawned campaign workers, experiment
        # subprocesses and env-resolving constructors all inherit it.
        from repro.fastpath import BACKEND_ENV

        os.environ[BACKEND_ENV] = args.backend

    if args.transport is not None:
        # Same export discipline as --backend: campaign workers and
        # experiment subprocesses resolve the transport from the env.
        from repro.transport import TRANSPORT_ENV

        os.environ[TRANSPORT_ENV] = args.transport

    if args.experiment == "verify":
        return _run_verify(args)
    if args.experiment == "chaos":
        return _run_chaos(args)

    from repro.experiments.executor import resolve_workers
    try:
        workers = resolve_workers(args.workers)
    except ValueError as error:
        parser.error(str(error))

    profiler = None
    if args.profile and args.experiment != "profile":
        from repro import profiling
        if workers > 1:
            print(
                "repro: note: --profile with --workers > 1 only observes "
                "the parent process; use the serial executor for full "
                "coverage",
                file=sys.stderr,
            )
        profiler = profiling.activate()

    if args.experiment == "baseline":
        from repro.experiments import baseline
        print(baseline.run(trials=args.trials, seed=args.seed,
                           workers=args.workers).render())
    elif args.experiment == "table1":
        from repro.experiments import table1
        print(table1.run(trials=args.trials, seed=args.seed,
                         workers=args.workers).render())
    elif args.experiment == "table2":
        from repro.experiments import table2
        print(table2.run(trials=args.trials, seed=args.seed,
                         workers=args.workers).render())
    elif args.experiment == "fig1":
        from repro.experiments import fig1
        print(fig1.run(seed=args.seed).render())
    elif args.experiment == "fig5":
        from repro.experiments import fig5
        print(fig5.run(trials=args.trials, seed=args.seed,
                       workers=args.workers).render())
    elif args.experiment == "fig6":
        from repro.experiments import fig6
        print(fig6.run(trials=args.trials, seed=args.seed,
                       workers=args.workers).render())
    elif args.experiment == "delay":
        from repro.experiments import delay_ablation
        print(delay_ablation.run(trials=args.trials, seed=args.seed,
                                 workers=args.workers).render())
    elif args.experiment == "ablations":
        from repro.experiments import ablations
        small = max(4, args.trials // 3)
        studies = [
            ablations.run_quirk,
            ablations.run_actuator,
            ablations.run_scheduler,
            ablations.run_defense,
            ablations.run_h1_baseline,
            ablations.run_push_defense,
            ablations.run_success_accounting,
            ablations.run_tcp_variants,
        ]
        for index, study in enumerate(studies):
            if index:
                print()
            print(study(trials=small, seed=args.seed,
                        workers=args.workers).render())
    elif args.experiment == "trigger":
        from repro.experiments import trigger_study
        print(trigger_study.run(
            trials=args.trials, training_trials=max(8, args.trials),
            seed=args.seed, workers=args.workers,
        ).render())
    elif args.experiment == "streaming":
        from repro.experiments import streaming_study
        print(streaming_study.run(
            trials=max(3, args.trials // 3), seed=args.seed,
            workers=args.workers,
        ).render())
    elif args.experiment == "partialmux":
        from repro.experiments import partial_mux
        print(partial_mux.run(trials=args.trials, seed=args.seed,
                              workers=args.workers).render())
    elif args.experiment == "generalization":
        from repro.experiments import generalization
        print(generalization.run(
            trials=max(3, args.trials // 4), seed=args.seed,
            workers=args.workers,
        ).render())
    elif args.experiment == "fingerprint":
        from repro.experiments import fingerprint_study
        print(fingerprint_study.run(seed=args.seed,
                                    workers=args.workers).render())
    elif args.experiment == "scorecard":
        from repro.experiments import scorecard
        card = scorecard.run(trials=args.trials, seed=args.seed,
                             workers=args.workers)
        print(card.render())
        return 0 if card.all_shapes_hold else 1
    elif args.experiment == "transport-study":
        from repro.experiments import transport_study
        print(transport_study.run(
            trials=max(2, args.trials // 8), seed=args.seed,
            workers=args.workers,
        ).render())
    elif args.experiment == "infer-study":
        from repro.experiments import infer_study
        try:
            design = _infer_design(args)
        except ValueError as error:
            parser.error(str(error))
        print(infer_study.run(
            trials=args.trials, workers=args.workers, design=design,
        ).render())
    elif args.experiment == "infer":
        return _run_infer(args)
    elif args.experiment == "robustness-study":
        return _run_robustness_study(args, workers)
    elif args.experiment == "campaign":
        return _run_campaign(args)
    elif args.experiment == "profile":
        from repro.experiments.hotpath import profile_reference
        _, report = profile_reference(seed=args.seed)
        print(report)
    elif args.experiment == "attack":
        _run_attack(args.trial if args.trial is not None else 0, args.seed)

    if profiler is not None:
        from repro import profiling
        for name, amount in profiling.hpack_cache_counters().items():
            profiler.counters[name] = amount
        profiling.deactivate()
        print(profiler.render(), file=sys.stderr)
    return 0


def _run_verify(args) -> int:
    """``repro verify``: conformance + golden masters + determinism."""
    from repro.conform import run_verify

    only = None
    if args.only:
        only = [name for name in args.only.split(",") if name]
    try:
        report = run_verify(
            quick=args.quick,
            only=only,
            update_golden=args.update_golden,
            fuzz_examples=args.fuzz_examples,
        )
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return report.exit_code


def _run_robustness_study(args, workers) -> int:
    """The fault-intensity sweep (see repro.experiments.robustness_study)."""
    import json as json_module

    from repro.experiments import robustness_study
    from repro.experiments.executor import FaultTolerance

    if args.levels:
        try:
            intensities = tuple(
                float(level) for level in args.levels.split(",") if level
            )
        except ValueError:
            print(f"repro: bad --levels value {args.levels!r}",
                  file=sys.stderr)
            return 2
    elif args.quick:
        intensities = robustness_study.QUICK_INTENSITIES
    else:
        intensities = robustness_study.INTENSITIES
    trials = min(args.trials, 3) if args.quick else args.trials
    fault_tolerance = FaultTolerance(
        timeout=args.trial_timeout if args.trial_timeout is not None else 300.0,
        retries=args.trial_retries if args.trial_retries is not None else 1,
        checkpoint_path=args.checkpoint,
    )
    result = robustness_study.run(
        trials=trials,
        seed=args.seed,
        intensities=intensities,
        workers=workers,
        fault_tolerance=fault_tolerance,
    )
    print(result.render())
    if not result.monotone_story:
        print("repro: warning: sweep is not monotone (success rose with "
              "fault intensity)", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json_module.dump(result.to_json(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
    return 0


def _run_campaign(args) -> int:
    """``repro campaign``: the sharded population-scale campaign engine.

    Stdout (the report table) and ``--json`` output are deterministic —
    seeded sessions, integer columnar folds, canonical merge order — so
    they diff clean across worker counts and kill/resume.  Wall-clock
    throughput and peak memory go to stderr only.

    Exit codes: 0 full coverage, 1 failed (per-shard error table on
    stderr), 2 bad arguments, 3 partial coverage (``--allow-partial``).
    """
    import dataclasses
    import json as json_module
    import time

    from repro import profiling
    from repro.campaign import (
        AnalyticModel,
        CampaignConfig,
        CampaignError,
        render_shard_errors,
        run_campaign,
    )
    from repro.web.workload import PopulationConfig

    population_overrides = {}
    if args.max_objects is not None:
        population_overrides["max_objects"] = args.max_objects
    if args.count_exponent is not None:
        population_overrides["count_exponent"] = args.count_exponent
    if args.size_exponent is not None:
        population_overrides["size_exponent"] = args.size_exponent
    try:
        population = dataclasses.replace(
            PopulationConfig(), **population_overrides
        )
        from repro.transport import resolve_transport

        config = CampaignConfig(
            sessions=args.sessions if args.sessions is not None else 100_000,
            shard_size=(
                args.shard_size if args.shard_size is not None else 2_000
            ),
            seed=args.seed,
            mode=args.mode or "analytic",
            population=population,
            model=AnalyticModel(),
            transport=resolve_transport(args.transport),
        )
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    try:
        result = run_campaign(
            config,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            backend=args.backend,
            allow_partial=args.allow_partial,
            deadline=args.deadline,
            heartbeat_timeout=args.heartbeat_timeout,
            failure_manifest=args.failure_manifest,
        )
    except CampaignError as error:
        print(render_shard_errors(config, error.errors), file=sys.stderr)
        print(f"repro: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    print(result.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json_module.dump(result.to_json(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
    rate = result.summary.sessions / elapsed if elapsed > 0 else 0.0
    print(
        f"repro campaign: {result.summary.sessions} sessions in "
        f"{elapsed:.1f}s ({rate:,.0f}/s), {result.shards} shards, "
        f"{result.backend} backend, {result.workers} worker(s), "
        f"{result.resumed_shards} shard(s) resumed, peak RSS "
        f"{profiling.peak_rss_kb():,} KB",
        file=sys.stderr,
    )
    if result.partial:
        covered = result.sessions_covered
        note = (
            f"repro: warning: PARTIAL coverage — {covered}/"
            f"{config.sessions} sessions, "
            f"{len(result.failed_shards)} failed and "
            f"{len(result.skipped_shards)} deadline-skipped shard(s)"
        )
        if result.manifest_path:
            note += f"; failure manifest: {result.manifest_path}"
        print(note, file=sys.stderr)
        print(render_shard_errors(config, result.errors), file=sys.stderr)
        return 3
    return 0


def _infer_overrides(args) -> dict:
    """Shared --reps/--defenses/--classifiers/--max-objects parsing."""
    overrides = {}
    if args.reps is not None:
        overrides["reps"] = args.reps
    if args.max_objects is not None:
        overrides["max_objects"] = args.max_objects
    if args.defenses:
        overrides["levels"] = tuple(
            name for name in args.defenses.split(",") if name
        )
    if args.classifiers:
        overrides["classifiers"] = tuple(
            name for name in args.classifiers.split(",") if name
        )
    return overrides


def _infer_design(args):
    """Build the E19 study design from CLI flags (may raise ValueError)."""
    from repro.infer.dataset import StudyDesign

    return StudyDesign(seed=args.seed, **_infer_overrides(args))


def _run_infer(args) -> int:
    """``repro infer``: the accuracy/overhead frontier at campaign scale.

    Same determinism contract as ``repro campaign``: stdout (the
    frontier table) and ``--json`` output are bit-identical across
    worker counts and kill/resume; throughput and resume history go to
    stderr only.  Exit codes: 0 complete, 1 shard failure, 2 bad
    arguments.
    """
    import json as json_module
    import time

    from repro import profiling
    from repro.infer.campaign import (
        InferCampaignConfig,
        InferCampaignError,
        run_infer_campaign,
    )

    try:
        config = InferCampaignConfig(
            sessions=args.sessions if args.sessions is not None else 2_000,
            shard_size=(
                args.shard_size if args.shard_size is not None else 250
            ),
            seed=args.seed,
            **_infer_overrides(args),
        )
        config.design()  # validates classifier names before workers start
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    try:
        result = run_infer_campaign(
            config,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
        )
    except InferCampaignError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    print(result.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json_module.dump(result.to_json(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
    rate = config.sessions / elapsed if elapsed > 0 else 0.0
    print(
        f"repro infer: {config.sessions} sessions in {elapsed:.1f}s "
        f"({rate:,.0f}/s), {result.shards} shards, {result.workers} "
        f"worker(s), {result.resumed_shards} shard(s) resumed, peak RSS "
        f"{profiling.peak_rss_kb():,} KB",
        file=sys.stderr,
    )
    return 0


def _run_chaos(args) -> int:
    """``repro chaos``: run the fault-injection recovery scenarios."""
    from repro.chaos import SCENARIOS, render_results, run_scenarios

    names = None
    if args.scenario:
        names = [name for name in args.scenario.split(",") if name]
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            print(
                f"repro: unknown chaos scenario(s) {unknown}; "
                f"available: {', '.join(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
    results = run_scenarios(names=names, quick=args.quick,
                            backend=args.backend)
    print(render_results(results))
    return 0 if all(result.passed for result in results) else 1


def _run_attack(trial: int, seed: int) -> None:
    """One annotated attacked session (the quickstart, inline)."""
    from repro import AdversaryConfig, TrialConfig, VolunteerWorkload, run_trial
    from repro.web.isidewith import HTML_OBJECT_ID

    workload = VolunteerWorkload(seed=seed)
    outcome = run_trial(trial, workload, TrialConfig(adversary=AdversaryConfig()))
    analysis = outcome.analyze()
    print(f"session #{trial}: completed={outcome.completed} "
          f"duration={outcome.duration:.1f}s "
          f"resets={outcome.browser.resets_sent}")
    html = analysis.single_object[HTML_OBJECT_ID]
    print(f"HTML: identified={html.identified} degree0={html.degree_zero} "
          f"success={html.success}")
    predicted = [p.replace('emblem-', '') for p in analysis.sequence_prediction]
    truth = [p.replace('emblem-', '') for p in analysis.sequence_truth]
    print(f"predicted order: {predicted}")
    print(f"true order     : {truth}")
    correct = sum(1 for a, b in zip(predicted, truth) if a == b)
    print(f"{correct}/8 positions correct")


if __name__ == "__main__":
    sys.exit(main())
