"""Numpy batch kernels for the analytic campaign engine.

One campaign shard — page generation, estimator noise, §V scoring and
the columnar fold — evaluated as a handful of array operations over
every session at once, instead of ~30 Python-level draws and a
candidate loop per session.

Bit-identity with the scalar path is a *construction*, not a hope:

* randomness is the same SplitMix64 counter stream
  (:class:`repro.simkernel.randomstream.CounterStream`) whose draw
  ``i`` is a closed-form ``mix64(seed + i * GAMMA)`` — computed here
  with wrapping ``uint64`` array arithmetic, identical bit patterns;
* uniforms scale a 53-bit integer by an exact power of two; zipf
  inversion uses ``np.searchsorted(side="left")`` which matches
  ``bisect.bisect_left`` on the identical cumulative table;
* object sizes use ``np.rint`` (half-to-even, like Python ``round``)
  on the same precomputed nominal floats;
* the framing model is the same ``body / chunk`` float64 division and
  ceil as :func:`repro.core.predictor.expected_wire_payload`;
* all folded columns are integers, reduced with ``np.bincount`` /
  masked segment minima, so the columnar state — and therefore the
  campaign digest — is byte-identical to folding sessions one by one.

The scalar fallback stays the source of truth: every kernel here has a
Hypothesis equivalence test against the pure-Python path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.campaign.columnar import ColumnarSummary
from repro.core.predictor import (
    FRAME_HEADER,
    RECORD_OVERHEAD,
    RESPONSE_HEADERS_WIRE,
)
from repro.simkernel.randomstream import SPLITMIX_GAMMA

_GAMMA = np.uint64(SPLITMIX_GAMMA)
_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MULT_2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_S11 = np.uint64(11)
_RECIP_2_53 = 1.0 / 9007199254740992.0
#: Sentinel error for candidates outside the tolerance window (far
#: above any real byte error, far below int64 overflow when summed).
_BIG_ERROR = 1 << 62


def _mix64(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = (z ^ (z >> _S30)) * _MULT_1
    z = (z ^ (z >> _S27)) * _MULT_2
    return z ^ (z >> _S31)


def counter_seeds(base: int, indices: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.simkernel.randomstream.counter_stream_seed`."""
    return _mix64(np.uint64(base) + (indices + np.uint64(1)) * _GAMMA)


def draw64(seeds: np.ndarray, draw: np.ndarray | int) -> np.ndarray:
    """The ``draw``-th (1-indexed) 64-bit output of each counter stream."""
    if isinstance(draw, np.ndarray):
        offset = draw.astype(np.uint64) * _GAMMA
    else:
        # Wrap in Python int arithmetic: numpy warns on *scalar*
        # uint64 overflow even though array overflow wraps silently.
        offset = np.uint64((int(draw) * SPLITMIX_GAMMA) & 0xFFFFFFFFFFFFFFFF)
    return _mix64(seeds + offset)

def uniform(seeds: np.ndarray, draw: np.ndarray | int) -> np.ndarray:
    """``CounterStream.random()`` for the given draw index (exact)."""
    return (draw64(seeds, draw) >> _S11).astype(np.float64) * _RECIP_2_53


def randint(
    seeds: np.ndarray, draw: np.ndarray | int, low: int, high: int
) -> np.ndarray:
    """``CounterStream.randint(low, high)`` for the given draw index."""
    span = np.uint64(high - low + 1)
    return (draw64(seeds, draw) % span).astype(np.int64) + low


def expected_wire_payload_batch(
    body_bytes: np.ndarray, chunk_bytes: int
) -> np.ndarray:
    """Vectorized :func:`repro.core.predictor.expected_wire_payload`.

    Same float64 true division and ceil as the scalar ``math.ceil``
    path, so results agree bit-for-bit for any realistic body size.
    """
    frames = np.maximum(
        np.ceil(body_bytes / float(chunk_bytes)), 1.0
    ).astype(np.int64)
    overhead = FRAME_HEADER + RECORD_OVERHEAD
    return body_bytes + frames * overhead + RESPONSE_HEADERS_WIRE


# ---------------------------------------------------------------------------
# Page generation (vectorized PopulationWorkload.page_spec)
# ---------------------------------------------------------------------------


def generate_pages(workload, start: int, stop: int) -> Dict[str, np.ndarray]:
    """Generate sessions ``[start, stop)`` as flat integer columns.

    Returns the ragged page population in segment form::

        counts    (S,)  objects per session
        sizes     (T,)  object body sizes, all sessions concatenated
        session_of(T,)  owning session row of each flat object
        targets   (S,)  target body sizes

    Values are bit-identical to ``workload.page_spec(session)`` for
    each session in the range.
    """
    config = workload.config
    sessions = np.arange(start, stop, dtype=np.uint64)
    page_seeds = counter_seeds(workload.page_stream_base, sessions)

    # Draw 1: zipf object count by inverse CDF, as in ZipfSampler.
    cdf = np.asarray(workload.count_cdf, dtype=np.float64)
    points = uniform(page_seeds, 1) * cdf[-1]
    counts = (
        np.searchsorted(cdf, points, side="left").astype(np.int64)
        + config.min_objects
    )

    # Draws 2..count+1: per-rank size jitter, flattened across sessions.
    total = int(counts.sum())
    session_of = np.repeat(np.arange(counts.shape[0]), counts)
    segment_starts = np.concatenate(
        ([0], np.cumsum(counts)[:-1])
    ).astype(np.int64)
    ranks = np.arange(total, dtype=np.int64) - segment_starts[session_of]
    jitter_u = uniform(page_seeds[session_of], ranks + 2)
    jitter = 1.0 + config.size_jitter * (2.0 * jitter_u - 1.0)
    nominal = np.asarray(workload.nominal_sizes, dtype=np.float64)
    sizes = np.rint(nominal[ranks] * jitter).astype(np.int64)
    np.maximum(sizes, config.min_object_bytes, out=sizes)

    # Draw count+2: the uniform target size.
    low, high = config.target_range
    targets = randint(page_seeds, counts + 2, low, high)
    return {
        "counts": counts,
        "sizes": sizes,
        "session_of": session_of,
        "targets": targets,
    }


# ---------------------------------------------------------------------------
# Analytic evaluation (vectorized evaluate_page_analytic)
# ---------------------------------------------------------------------------


def _evaluate_columns(
    counts: np.ndarray,
    sizes: np.ndarray,
    session_of: np.ndarray,
    targets: np.ndarray,
    analytic_seeds: np.ndarray,
    model,
) -> Dict[str, np.ndarray]:
    """Score every session; returns the columnar fold inputs as arrays.

    Mirrors :func:`repro.campaign.engine.evaluate_page_analytic` draw
    for draw: a record-miscount Bernoulli (whose *hit* consumes the
    sign draw, shifting later draw indices by one), uniform byte noise,
    first-wins nearest-match scoring with the target as candidate 0,
    and the object-count-calibrated serialization Bernoulli.
    """
    rows = counts.shape[0]
    chunk = model.chunk_bytes

    # Estimator noise draws; draw indices after a miscount shift by 1.
    miscount_hit = uniform(analytic_seeds, 1) < model.record_miscount_rate
    sign = np.where(uniform(analytic_seeds, 2) < 0.5, 1, -1)
    miscount = np.where(miscount_hit, sign, 0)
    noise_draw = np.where(miscount_hit, 3, 2)
    noise = randint(
        analytic_seeds, noise_draw, -model.noise_bytes, model.noise_bytes
    )
    serialize_draw = np.where(miscount_hit, 4, 3)

    expected_target = expected_wire_payload_batch(targets, chunk)
    observed = expected_target + miscount * RECORD_OVERHEAD + noise

    tolerance_abs = float(model.tolerance_abs)
    tolerance_rel = model.tolerance_rel

    # Candidate 0 (the target) scored against itself.
    target_error = np.abs(observed - expected_target)
    target_budget = np.maximum(
        tolerance_abs, tolerance_rel * expected_target
    )
    target_in_tol = target_error <= target_budget

    # Embedded objects, scored flat and reduced per segment.
    expected_obj = expected_wire_payload_batch(sizes, chunk)
    obj_error = np.abs(observed[session_of] - expected_obj)
    obj_budget = np.maximum(tolerance_abs, tolerance_rel * expected_obj)
    obj_in_tol = obj_error <= obj_budget
    confusers = np.bincount(
        session_of, weights=obj_in_tol, minlength=rows
    ).astype(np.int64)
    # Segment minimum of in-tolerance object errors.  bincount-based
    # sums are exact; for the minimum we use a masked sort-free
    # reduction: scatter errors into per-session slots via np.minimum
    # on a reversed-stable ordering trick is overkill — counts >= 1
    # ragged segments reduce cleanly with minimum.reduceat over a
    # sentinel-padded array, and rows with zero objects fall back to
    # the sentinel afterwards.
    masked_error = np.where(obj_in_tol, obj_error, _BIG_ERROR)
    if sizes.shape[0]:
        segment_starts = np.concatenate(
            ([0], np.cumsum(counts)[:-1])
        ).astype(np.int64)
        padded = np.concatenate((masked_error, [_BIG_ERROR]))
        starts = np.minimum(segment_starts, masked_error.shape[0])
        min_other = np.minimum.reduceat(padded, starts)
        min_other = np.where(counts > 0, min_other, _BIG_ERROR)
    else:
        min_other = np.full(rows, _BIG_ERROR, dtype=np.int64)

    # First-wins rule: an object only displaces the target on a
    # *strictly* smaller error, so the target survives ties.
    identified = target_in_tol & (min_other >= target_error)
    match_error = np.where(identified, target_error, 0)

    serialize_rate = np.maximum(
        model.serialize_floor,
        model.serialize_base - model.serialize_slope * counts,
    )
    serialized = uniform(analytic_seeds, serialize_draw) < serialize_rate

    page_bytes = (
        np.bincount(session_of, weights=sizes, minlength=rows).astype(
            np.int64
        )
        + targets
    )
    return {
        "objects": counts,
        "page_bytes": page_bytes,
        "target_bytes": targets,
        "serialized": serialized,
        "identified": identified,
        "confusers": confusers,
        "match_error": match_error,
    }


def evaluate_shard_analytic(
    workload, start: int, stop: int, model
) -> ColumnarSummary:
    """Evaluate one analytic shard in batch; returns its columnar fold.

    The fast backend's replacement for the scalar per-session loop in
    :class:`repro.campaign.engine.ShardTask` — bit-identical summary,
    one array program instead of ``stop - start`` Python sessions.
    """
    pages = generate_pages(workload, start, stop)
    sessions = np.arange(start, stop, dtype=np.uint64)
    analytic_seeds = counter_seeds(workload.analytic_stream_base, sessions)
    columns = _evaluate_columns(
        pages["counts"],
        pages["sizes"],
        pages["session_of"],
        pages["targets"],
        analytic_seeds,
        model,
    )
    summary = ColumnarSummary()
    summary.fold_batch(**columns)
    return summary


def evaluate_pages_analytic(
    specs: Sequence, seeds: Sequence[int], model
) -> List[Dict[str, Any]]:
    """Batch-evaluate explicit ``PageSpec``s with explicit stream seeds.

    Returns one dict per spec with the exact keys and values of
    :func:`repro.campaign.engine.evaluate_page_analytic` run with
    ``CounterStream(seed)`` — the equivalence surface the Hypothesis
    suite exercises (including zero-object pages the population never
    generates).
    """
    counts = np.asarray(
        [spec.object_count for spec in specs], dtype=np.int64
    )
    sizes = np.asarray(
        [size for spec in specs for size in spec.object_sizes],
        dtype=np.int64,
    )
    session_of = np.repeat(np.arange(len(specs)), counts)
    targets = np.asarray(
        [spec.target_size for spec in specs], dtype=np.int64
    )
    analytic_seeds = np.asarray(list(seeds), dtype=np.uint64)
    columns = _evaluate_columns(
        counts, sizes, session_of, targets, analytic_seeds, model
    )
    results: List[Dict[str, Any]] = []
    for row in range(len(specs)):
        results.append(
            {
                "objects": int(columns["objects"][row]),
                "page_bytes": int(columns["page_bytes"][row]),
                "target_bytes": int(columns["target_bytes"][row]),
                "serialized": bool(columns["serialized"][row]),
                "identified": bool(columns["identified"][row]),
                "confusers": int(columns["confusers"][row]),
                "match_error": int(columns["match_error"][row]),
                "broken": False,
                "duration_us": 0,
            }
        )
    return results
