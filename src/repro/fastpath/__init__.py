"""Opt-in vectorized backend selection.

The fast backend replaces per-session / per-event Python loops with
numpy batch kernels behind the *existing* interfaces:

* :mod:`repro.fastpath.analytic` evaluates whole campaign shards as
  array programs (see :func:`evaluate_shard_analytic`);
* the simulator batches homogeneous event runs (back-to-back link
  deliveries, timer expirations) when constructed with
  ``batching=True``.

Selection is explicit and layered: a CLI ``--backend`` argument wins,
else the ``REPRO_BACKEND`` environment variable, else ``python``.  The
environment hop is what carries the choice into spawned campaign
workers and experiment subprocesses.  Both backends are bit-identical
by construction — golden masters, the determinism matrix and campaign
digests are asserted equal across backends in CI — so ``fast`` changes
wall-clock time and nothing else.
"""

from __future__ import annotations

import os

#: Environment variable carrying the backend choice across processes.
BACKEND_ENV = "REPRO_BACKEND"

#: Recognised backend names.
BACKENDS = ("python", "fast")


def resolve_backend(backend: str | None = None) -> str:
    """Resolve the effective backend (argument → env → ``python``)."""
    value = backend or os.environ.get(BACKEND_ENV) or "python"
    value = value.strip().lower()
    if value not in BACKENDS:
        raise ValueError(
            f"unknown backend {value!r}; expected one of {BACKENDS}"
        )
    return value


def fast_backend_active(backend: str | None = None) -> bool:
    """Whether the resolved backend is the vectorized fast path."""
    return resolve_backend(backend) == "fast"
