"""Vectorized feature extraction for the fast backend.

Computes the exact integers of
:func:`repro.infer.features.extract_features` for a whole batch of
observations in a handful of int64 array operations — every feature is
integer arithmetic, so scalar/vector bit-identity holds unconditionally
(no float rounding to reason about, unlike the analytic campaign
kernel).  The Hypothesis equivalence suite in
``tests/test_fastpath_infer.py`` pins it anyway.

Segment layout follows :mod:`repro.fastpath.analytic`: observations
flatten into ``times``/``lengths`` arrays with a ``starts`` offset
vector; per-observation reductions are ``ufunc.reduceat`` calls and
per-burst reductions reduce over a second, data-dependent boundary
vector derived from the inter-arrival gaps.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.infer.features import FeatureConfig, RecordObs


def extract_features_batch(
    observations: Sequence[Sequence[RecordObs]], config: FeatureConfig
) -> List[Tuple[int, ...]]:
    """Feature vectors of a batch, bit-identical to the scalar path.

    Raises:
        ValueError: when any observation is empty (same contract as the
            scalar extractor).
    """
    if not observations:
        return []
    counts = np.asarray([len(obs) for obs in observations], dtype=np.int64)
    if (counts == 0).any():
        raise ValueError("cannot extract features from an empty observation")
    total = int(counts.sum())
    times = np.empty(total, dtype=np.int64)
    lengths = np.empty(total, dtype=np.int64)
    cursor = 0
    for obs in observations:
        for t, l in obs:
            times[cursor] = t
            lengths[cursor] = l
            cursor += 1
    batch = len(observations)
    ends = np.cumsum(counts)
    starts = ends - counts
    segment_of = np.repeat(np.arange(batch, dtype=np.int64), counts)

    columns: List[np.ndarray] = [
        counts,
        np.add.reduceat(lengths, starts),
        np.minimum.reduceat(lengths, starts),
        np.maximum.reduceat(lengths, starts),
    ]

    top = config.hist_bins - 1
    bins = np.minimum(lengths // config.hist_bin_bytes, top)
    hist = np.bincount(
        segment_of * config.hist_bins + bins,
        minlength=batch * config.hist_bins,
    ).reshape(batch, config.hist_bins)
    columns.extend(hist[:, b] for b in range(config.hist_bins))

    columns.append(lengths[starts])
    columns.append(lengths[ends - 1])

    cumulative = np.cumsum(lengths)
    base = np.where(starts > 0, cumulative[starts - 1], 0)
    points = config.curve_points
    for k in range(1, points + 1):
        index = starts + (k * counts + points - 1) // points - 1
        columns.append(cumulative[index] - base)

    # Inter-arrival gaps; the entry at each segment start is not a real
    # gap and is masked to 0 (gaps are non-negative in time-ordered
    # observations, so 0 is absorbing for sum/max alike).
    gaps = np.empty(total, dtype=np.int64)
    gaps[0] = 0
    np.subtract(times[1:], times[:-1], out=gaps[1:])
    gaps[starts] = 0

    limit = config.burst_gap_us
    boundary = np.zeros(total, dtype=bool)
    boundary[starts] = True
    boundary |= gaps > limit
    burst_starts = np.flatnonzero(boundary)
    burst_bytes = np.add.reduceat(lengths, burst_starts)
    burst_records = np.diff(np.append(burst_starts, total))
    burst_segment = segment_of[burst_starts]
    # Every segment opens a burst, so the per-segment groups of the
    # burst arrays start exactly where burst_segment changes.
    segment_burst_starts = np.flatnonzero(
        np.concatenate(([True], burst_segment[1:] != burst_segment[:-1]))
    )
    columns.append(np.bincount(burst_segment, minlength=batch))
    columns.append(np.maximum.reduceat(burst_bytes, segment_burst_starts))
    columns.append(np.maximum.reduceat(burst_records, segment_burst_starts))

    columns.append(np.add.reduceat(gaps, starts))
    columns.append(np.maximum.reduceat(gaps, starts))
    columns.append(np.add.reduceat((gaps > limit).astype(np.int64), starts))

    matrix = np.stack([column.astype(np.int64) for column in columns], axis=1)
    return [tuple(int(value) for value in row) for row in matrix]
