"""RFC 7541 HPACK conformance vectors (Appendix C) for ``repro verify``.

The repo's HPACK codec is *size-exact but byteless*: a header block is
a stream of symbolic instructions whose octet counts match what a real
encoder emits.  The Appendix C vectors therefore check everything the
codec actually models, in both directions:

* **C.1** — prefix-integer octet counts, including the examples' exact
  values and the prefix-boundary cases;
* **Appendix B** — Huffman octet counts of every string literal that
  appears in the Appendix C examples (pinning the code-length table);
* **Appendix A** — the 61-entry static table;
* **C.3/C.4** (requests) and **C.5/C.6** (responses, 256-octet table
  with evictions) — for each header block in sequence: the encoder's
  representation decisions (indexed vs literal, and which index), the
  exact encoded octet count in both the Huffman (C.4/C.6) and raw
  (C.3/C.5) renderings, the dynamic-table contents and RFC §4.1 size
  after the block, and the decoder's round trip with an independently
  maintained table;
* **§4.4** — oversized-entry and eviction behavior.

A drift anywhere in :mod:`repro.hpack` — table accounting, lookup
order, Huffman lengths, integer coding — fails a named vector here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.conform.report import Section
from repro.hpack.codec import (
    HeaderBlock,
    HpackDecoder,
    HpackEncoder,
    prefix_integer_length,
)
from repro.hpack.huffman import huffman_encoded_length
from repro.hpack.table import STATIC_TABLE, DynamicTable, HeaderField

Headers = Tuple[Tuple[str, str], ...]

#: RFC 7541 C.1 plus prefix-boundary cases: (value, prefix bits, octets).
INTEGER_VECTORS = (
    (10, 5, 1),     # C.1.1
    (1337, 5, 3),   # C.1.2
    (42, 8, 1),     # C.1.3
    (0, 8, 1),
    (30, 5, 1),
    (31, 5, 2),     # prefix saturates, zero continuation
    (126, 7, 1),
    (127, 7, 2),
    (254, 8, 1),
    (255, 8, 2),
)

#: Huffman octet counts of every string in the Appendix C examples.
HUFFMAN_VECTORS = (
    ("www.example.com", 12),
    ("no-cache", 6),
    ("custom-key", 8),
    ("custom-value", 9),
    ("302", 2),
    ("307", 3),
    ("private", 5),
    ("Mon, 21 Oct 2013 20:13:21 GMT", 22),
    ("Mon, 21 Oct 2013 20:13:22 GMT", 22),
    ("https://www.example.com", 17),
    ("gzip", 3),
    ("foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1", 45),
)

#: Appendix A spot checks: (index, name, value).
STATIC_VECTORS = (
    (1, ":authority", ""),
    (2, ":method", "GET"),
    (4, ":path", "/"),
    (7, ":scheme", "https"),
    (8, ":status", "200"),
    (16, "accept-encoding", "gzip, deflate"),
    (28, "content-length", ""),
    (32, "cookie", ""),
    (55, "set-cookie", ""),
    (61, "www-authenticate", ""),
)


class BlockVector:
    """One Appendix C header block with everything the RFC documents."""

    def __init__(
        self,
        name: str,
        headers: Sequence[Tuple[str, str]],
        kinds: Sequence[Tuple[str, int]],
        huffman_octets: int,
        raw_octets: int,
        table_after: Sequence[Tuple[str, str]],
        table_size_after: int,
    ) -> None:
        self.name = name
        self.headers: Headers = tuple(headers)
        #: Expected (instruction kind, index) per header, where the
        #: index is the full-match index for "indexed" and the name
        #: index (0 = literal name) for "literal_indexed".
        self.kinds = tuple(kinds)
        self.huffman_octets = huffman_octets
        self.raw_octets = raw_octets
        self.table_after = tuple(table_after)
        self.table_size_after = table_size_after


_DATE_1 = "Mon, 21 Oct 2013 20:13:21 GMT"
_DATE_2 = "Mon, 21 Oct 2013 20:13:22 GMT"
_URL = "https://www.example.com"
_COOKIE = "foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1"

#: C.3 (raw sizes) / C.4 (Huffman sizes): three requests, 4096 table.
REQUEST_VECTORS = (
    BlockVector(
        "C.3.1/C.4.1 first request",
        [(":method", "GET"), (":scheme", "http"), (":path", "/"),
         (":authority", "www.example.com")],
        [("indexed", 2), ("indexed", 6), ("indexed", 4),
         ("literal_indexed", 1)],
        huffman_octets=17, raw_octets=20,
        table_after=[(":authority", "www.example.com")],
        table_size_after=57,
    ),
    BlockVector(
        "C.3.2/C.4.2 second request",
        [(":method", "GET"), (":scheme", "http"), (":path", "/"),
         (":authority", "www.example.com"), ("cache-control", "no-cache")],
        [("indexed", 2), ("indexed", 6), ("indexed", 4), ("indexed", 62),
         ("literal_indexed", 24)],
        huffman_octets=12, raw_octets=14,
        table_after=[("cache-control", "no-cache"),
                     (":authority", "www.example.com")],
        table_size_after=110,
    ),
    BlockVector(
        "C.3.3/C.4.3 third request",
        [(":method", "GET"), (":scheme", "https"),
         (":path", "/index.html"), (":authority", "www.example.com"),
         ("custom-key", "custom-value")],
        [("indexed", 2), ("indexed", 7), ("indexed", 5), ("indexed", 63),
         ("literal_indexed", 0)],
        huffman_octets=24, raw_octets=29,
        table_after=[("custom-key", "custom-value"),
                     ("cache-control", "no-cache"),
                     (":authority", "www.example.com")],
        table_size_after=164,
    ),
)

#: C.5 (raw) / C.6 (Huffman): three responses, 256-octet table, with
#: the evictions the RFC walks through.
RESPONSE_VECTORS = (
    BlockVector(
        "C.5.1/C.6.1 first response",
        [(":status", "302"), ("cache-control", "private"),
         ("date", _DATE_1), ("location", _URL)],
        [("literal_indexed", 8), ("literal_indexed", 24),
         ("literal_indexed", 33), ("literal_indexed", 46)],
        huffman_octets=54, raw_octets=70,
        table_after=[("location", _URL), ("date", _DATE_1),
                     ("cache-control", "private"), (":status", "302")],
        table_size_after=222,
    ),
    BlockVector(
        "C.5.2/C.6.2 second response",
        [(":status", "307"), ("cache-control", "private"),
         ("date", _DATE_1), ("location", _URL)],
        [("literal_indexed", 8), ("indexed", 65), ("indexed", 64),
         ("indexed", 63)],
        huffman_octets=8, raw_octets=8,
        table_after=[(":status", "307"), ("location", _URL),
                     ("date", _DATE_1), ("cache-control", "private")],
        table_size_after=222,
    ),
    BlockVector(
        "C.5.3/C.6.3 third response",
        [(":status", "200"), ("cache-control", "private"),
         ("date", _DATE_2), ("location", _URL),
         ("content-encoding", "gzip"), ("set-cookie", _COOKIE)],
        [("indexed", 8), ("indexed", 65), ("literal_indexed", 33),
         ("indexed", 64), ("literal_indexed", 26),
         ("literal_indexed", 55)],
        huffman_octets=79, raw_octets=98,
        table_after=[("set-cookie", _COOKIE),
                     ("content-encoding", "gzip"), ("date", _DATE_2)],
        table_size_after=215,
    ),
)


def _raw_block_octets(block: HeaderBlock) -> int:
    """The block's octet count with raw (non-Huffman) string literals.

    Replays the encoder's instructions pricing every string literal at
    its raw length — the rendering Appendix C.3/C.5 uses — so the RFC's
    exact byte counts check the representation decisions independently
    of the Huffman table.
    """
    total = 0
    for instruction in block.instructions:
        if instruction.kind == "indexed":
            total += prefix_integer_length(instruction.index, 7)
            continue
        field = instruction.field
        if instruction.index:
            total += prefix_integer_length(instruction.index, 6)
        else:
            total += 1 + prefix_integer_length(len(field.name), 7)
            total += len(field.name)
        total += prefix_integer_length(len(field.value), 7) + len(field.value)
    return total


def _table_state(table: DynamicTable) -> Tuple[Headers, int]:
    entries = tuple(
        (entry.name, entry.value)
        for entry in (table.entry_at(index)
                      for index in range(len(STATIC_TABLE) + 1,
                                         len(STATIC_TABLE) + 1 + len(table)))
    )
    return entries, table.size


def _run_suite(
    section: Section,
    suite_name: str,
    vectors: Sequence[BlockVector],
    max_table_size: int,
) -> None:
    """Encode and decode one Appendix C sequence, checking every block."""
    encoder = HpackEncoder(max_table_size=max_table_size)
    decoder = HpackDecoder(max_table_size=max_table_size)
    for vector in vectors:
        problems: List[str] = []
        block = encoder.encode(vector.headers)

        kinds = tuple(
            (instruction.kind, instruction.index)
            for instruction in block.instructions
        )
        if kinds != vector.kinds:
            problems.append(f"representations {kinds} != {vector.kinds}")
        if block.encoded_length != vector.huffman_octets:
            problems.append(
                f"huffman octets {block.encoded_length} != "
                f"{vector.huffman_octets}"
            )
        raw = _raw_block_octets(block)
        if raw != vector.raw_octets:
            problems.append(f"raw octets {raw} != {vector.raw_octets}")

        entries, size = _table_state(encoder.table)
        if entries != vector.table_after:
            problems.append(f"encoder table {entries} != {vector.table_after}")
        if size != vector.table_size_after:
            problems.append(
                f"encoder table size {size} != {vector.table_size_after}"
            )

        decoded = tuple(decoder.decode(block))
        if decoded != vector.headers:
            problems.append(f"decode mismatch: {decoded}")
        dec_entries, dec_size = _table_state(decoder.table)
        if dec_entries != vector.table_after:
            problems.append(
                f"decoder table {dec_entries} != {vector.table_after}"
            )
        if dec_size != vector.table_size_after:
            problems.append(
                f"decoder table size {dec_size} != {vector.table_size_after}"
            )

        section.add(
            f"{suite_name} {vector.name}",
            not problems,
            "; ".join(problems),
        )


def run_checks() -> Section:
    """All HPACK conformance vectors, as one report section."""
    section = Section("HPACK conformance (RFC 7541 Appendix C)")

    bad_integers = [
        f"({value}, {prefix}) -> "
        f"{prefix_integer_length(value, prefix)} != {expected}"
        for value, prefix, expected in INTEGER_VECTORS
        if prefix_integer_length(value, prefix) != expected
    ]
    section.add("C.1 prefix integers", not bad_integers,
                "; ".join(bad_integers))

    bad_huffman = [
        f"{text!r} -> {huffman_encoded_length(text)} != {expected}"
        for text, expected in HUFFMAN_VECTORS
        if huffman_encoded_length(text) != expected
    ]
    section.add("Appendix B Huffman lengths", not bad_huffman,
                "; ".join(bad_huffman))

    static_problems: List[str] = []
    if len(STATIC_TABLE) != 61:
        static_problems.append(f"{len(STATIC_TABLE)} entries != 61")
    for index, name, value in STATIC_VECTORS:
        entry = STATIC_TABLE[index - 1]
        if (entry.name, entry.value) != (name, value):
            static_problems.append(
                f"[{index}] = ({entry.name!r}, {entry.value!r}) != "
                f"({name!r}, {value!r})"
            )
    section.add("Appendix A static table", not static_problems,
                "; ".join(static_problems))

    _run_suite(section, "requests", REQUEST_VECTORS, max_table_size=4096)
    _run_suite(section, "responses", RESPONSE_VECTORS, max_table_size=256)

    # §4.4: an entry larger than the whole table empties it and is not
    # itself inserted; ordinary inserts evict FIFO from the oldest end.
    table = DynamicTable(max_size=96)
    table.insert(HeaderField("a" * 5, "b" * 5))   # size 42
    table.insert(HeaderField("c" * 5, "d" * 5))   # size 42 -> 84 total
    table.insert(HeaderField("e" * 5, "f" * 5))   # evicts the oldest
    eviction_ok = (
        len(table) == 2
        and table.size == 84
        and table.entry_at(62).name == "e" * 5
        and table.entry_at(63).name == "c" * 5
    )
    table.insert(HeaderField("x" * 64, "y" * 64))  # > max: clears table
    oversize_ok = len(table) == 0 and table.size == 0
    section.add(
        "§4.4 eviction and oversized entry",
        eviction_ok and oversize_ok,
        "" if eviction_ok and oversize_ok else
        f"eviction_ok={eviction_ok} oversize_ok={oversize_ok}",
    )
    return section
