"""Conformance & golden-master regression subsystem (``repro verify``).

Three layers of mechanical checks that every perf or robustness PR must
keep green:

* :mod:`repro.conform.vectors` — protocol conformance: the RFC 7541
  Appendix C HPACK vectors through :mod:`repro.hpack.codec` in both
  directions, and the RFC 7540 frame wire round trip
  (:mod:`repro.conform.frames`).
* :mod:`repro.conform.golden` — golden masters: SHA-256 digests of the
  rendered stdout of every experiment at the quick profile, checked in
  as ``golden.json`` and regenerated with ``repro verify
  --update-golden``.
* :mod:`repro.conform.matrix` — the determinism matrix: every golden
  experiment re-run serial vs ``--workers 4`` vs
  checkpoint-kill-resume, asserting bit-identical stdout.
* :mod:`repro.chaos` — the chaos supervision layer: injected faults
  (corrupted/torn checkpoints, ``ENOSPC``, killed and stalled workers,
  expired deadlines) must end in a bit-identical recovered digest or a
  well-formed partial result with a validating failure manifest.
  ``--quick`` runs the serial scenarios; the full profile adds the
  process-fault ones.

:func:`run_verify` runs the requested layers and returns a
:class:`~repro.conform.report.VerifyReport`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.conform.report import CheckResult, Section, VerifyReport

__all__ = [
    "CheckResult",
    "Section",
    "VerifyReport",
    "run_verify",
]


def run_verify(
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    update_golden: bool = False,
    fuzz_examples: int = 200,
) -> VerifyReport:
    """Run the verification layers and return the combined report.

    Args:
        quick: CI profile — the conformance vectors, a 3-experiment
            golden subset, and one determinism-matrix cell.
        only: restrict golden/matrix layers to these experiment names.
        update_golden: regenerate ``golden.json`` from the current tree
            instead of comparing against it (golden layer only; the
            matrix still runs against the fresh captures).
        fuzz_examples: deterministic random round-trip examples per
            fuzz check.
    """
    from repro.conform import frames as frames_checks
    from repro.conform import golden, matrix, vectors

    report = VerifyReport()
    report.sections.append(vectors.run_checks())
    report.sections.append(frames_checks.run_checks(examples=fuzz_examples))

    names = golden.select_experiments(quick=quick, only=only)
    captures, golden_section = golden.run_checks(
        names, update=update_golden
    )
    report.sections.append(golden_section)
    report.sections.append(
        matrix.run_checks(names, captures, quick=quick)
    )
    if only is None:
        # The chaos layer supervises campaigns, not individual golden
        # experiments, so --only (an experiment filter) skips it.
        from repro.chaos import verify_section

        report.sections.append(verify_section(quick=quick))
    return report
