"""Pass/fail reporting for ``repro verify``.

A verify run is a list of :class:`Section`\\ s (one per layer), each a
list of :class:`CheckResult`\\ s.  The rendering is deliberately plain —
one line per check, a per-section tally, and a final verdict — so CI
logs stay readable and diffs of the report itself are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Detail lines longer than this are indented as a block under the
#: check instead of inlined after the status.
_INLINE_DETAIL = 60


@dataclass
class CheckResult:
    """One named check: passed or failed, with human-readable detail."""

    name: str
    passed: bool
    detail: str = ""
    duration: float = 0.0

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


@dataclass
class Section:
    """One verify layer (conformance, golden, matrix)."""

    title: str
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def tally(self) -> str:
        good = sum(1 for check in self.checks if check.passed)
        return f"{good}/{len(self.checks)} passed"

    def add(self, name: str, passed: bool, detail: str = "",
            duration: float = 0.0) -> CheckResult:
        check = CheckResult(name, passed, detail, duration)
        self.checks.append(check)
        return check

    def render(self) -> str:
        lines = [f"## {self.title} — {self.tally}"]
        for check in self.checks:
            timing = f" ({check.duration:.1f}s)" if check.duration >= 0.05 else ""
            if check.detail and (
                not check.passed or len(check.detail) > _INLINE_DETAIL
                or "\n" in check.detail
            ):
                lines.append(f"  [{check.status}] {check.name}{timing}")
                for detail_line in check.detail.splitlines():
                    lines.append(f"         {detail_line}")
            else:
                suffix = f" — {check.detail}" if check.detail else ""
                lines.append(
                    f"  [{check.status}] {check.name}{suffix}{timing}"
                )
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """The whole ``repro verify`` run."""

    sections: List[Section] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(section.passed for section in self.sections)

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def failures(self) -> List[CheckResult]:
        return [
            check
            for section in self.sections
            for check in section.checks
            if not check.passed
        ]

    def render(self) -> str:
        lines = ["# repro verify"]
        for section in self.sections:
            lines.append("")
            lines.append(section.render())
        lines.append("")
        failures = self.failures()
        if failures:
            names = ", ".join(check.name for check in failures)
            lines.append(f"VERDICT: FAIL — {len(failures)} check(s): {names}")
        else:
            total = sum(len(section.checks) for section in self.sections)
            lines.append(f"VERDICT: PASS — all {total} checks")
        return "\n".join(lines)
