"""Determinism matrix: serial vs parallel vs kill-and-resume.

For every golden experiment at the quick profile, three cells must
produce bit-identical stdout:

* **serial** — the golden layer's capture (``--workers 1``), reused as
  the reference;
* **workers-4** — the same argv with ``--workers 4``: a spawn pool
  must not change a byte;
* **kill+resume** — the run is checkpointed, the checkpoint is
  truncated to a strict prefix (simulating a kill partway through),
  and the re-run must still match the reference.  The robustness study
  uses its own ``--checkpoint`` flow; every other experiment is
  checkpointed generically through the executor's
  :data:`~repro.experiments.executor.CHECKPOINT_DIR_ENV` hook.

This generalizes the one-off serial-vs-parallel and resume checks that
previously lived in ``tests/test_executor*.py`` into a per-experiment
guarantee the CLI can assert on demand.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Sequence

from repro.conform.golden import EXPERIMENTS, capture
from repro.conform.report import Section
from repro.experiments.executor import (
    CHECKPOINT_DIR_ENV,
    Checkpoint,
    reset_auto_checkpoint_calls,
)

#: The single cell the ``--quick`` profile runs (the experiment must be
#: in the quick golden subset so its serial reference exists).
QUICK_CELL = ("table1", "workers-4")


def _first_divergence(reference: str, candidate: str) -> str:
    """Locate the first differing line, for actionable failure detail."""
    ref_lines = reference.splitlines()
    new_lines = candidate.splitlines()
    for index, (ref, new) in enumerate(zip(ref_lines, new_lines), start=1):
        if ref != new:
            return f"first divergence at line {index}: {ref!r} != {new!r}"
    return (
        f"line counts differ: {len(ref_lines)} (serial) vs "
        f"{len(new_lines)}"
    )


def _truncate_checkpoint(path: Path) -> int:
    """Drop the second half of a checkpoint's results (simulated kill).

    Returns how many results were kept.  An empty or missing file is
    left alone — resume-from-nothing is just a full run.  Delegates to
    :meth:`Checkpoint.truncate`, which re-seals the file's integrity
    digest — a raw JSON rewrite would trip the corruption quarantine,
    which is the *chaos* harness's job to exercise, not the matrix's.
    """
    return Checkpoint.truncate(str(path))


def _workers_cell(section: Section, name: str, reference: str) -> None:
    started = time.monotonic()
    try:
        text = capture(name, extra_argv=["--workers", "4"])
    except Exception as error:  # noqa: BLE001 - reported, not raised
        section.add(f"matrix:{name}:workers-4", False,
                    f"run failed: {type(error).__name__}: {error}",
                    time.monotonic() - started)
        return
    passed = text == reference
    section.add(
        f"matrix:{name}:workers-4", passed,
        "" if passed else _first_divergence(reference, text),
        time.monotonic() - started,
    )


def _resume_cell(section: Section, name: str, reference: str) -> None:
    started = time.monotonic()
    check = f"matrix:{name}:kill+resume"
    try:
        with tempfile.TemporaryDirectory(prefix="repro-matrix-") as tmp:
            if name == "robustness-study":
                ck = Path(tmp) / "robustness.json"
                extra = ["--checkpoint", str(ck)]
                first = capture(name, extra_argv=extra)
                kept = _truncate_checkpoint(ck)
                resumed = capture(name, extra_argv=extra)
            else:
                previous = os.environ.get(CHECKPOINT_DIR_ENV)
                os.environ[CHECKPOINT_DIR_ENV] = tmp
                try:
                    reset_auto_checkpoint_calls()
                    first = capture(name)
                    kept = sum(
                        _truncate_checkpoint(path)
                        for path in sorted(Path(tmp).glob("call*.json"))
                    )
                    reset_auto_checkpoint_calls()
                    resumed = capture(name)
                finally:
                    if previous is None:
                        os.environ.pop(CHECKPOINT_DIR_ENV, None)
                    else:
                        os.environ[CHECKPOINT_DIR_ENV] = previous
    except Exception as error:  # noqa: BLE001 - reported, not raised
        section.add(check, False,
                    f"run failed: {type(error).__name__}: {error}",
                    time.monotonic() - started)
        return
    elapsed = time.monotonic() - started
    if first != reference:
        section.add(check, False,
                    "checkpointed run differs from serial: "
                    + _first_divergence(reference, first), elapsed)
    elif resumed != reference:
        section.add(check, False,
                    f"resumed run (from {kept} checkpointed trials) "
                    "differs from serial: "
                    + _first_divergence(reference, resumed), elapsed)
    else:
        section.add(check, True,
                    f"resumed from {kept} checkpointed trials", elapsed)


def run_checks(
    names: Sequence[str],
    captures: Dict[str, str],
    quick: bool = False,
) -> Section:
    """The determinism-matrix section of a verify run.

    ``captures`` is the golden layer's serial stdout per experiment —
    the reference every cell compares against.
    """
    section = Section(
        "Determinism matrix" + (" (quick: one cell)" if quick else "")
    )
    if quick:
        name, _ = QUICK_CELL
        if name in captures:
            _workers_cell(section, name, captures[name])
        else:
            section.add(f"matrix:{name}:workers-4", False,
                        "no serial reference (golden capture failed)")
        return section
    for name in names:
        if name not in EXPERIMENTS:
            continue
        reference = captures.get(name)
        if reference is None:
            section.add(f"matrix:{name}", False,
                        "no serial reference (golden capture failed)")
            continue
        _workers_cell(section, name, reference)
        _resume_cell(section, name, reference)
    return section
