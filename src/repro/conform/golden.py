"""Golden-master stdout digests for every experiment (``repro verify``).

Each registered experiment runs at a fixed *quick profile* (small trial
counts, the default seed, ``--workers 1``) with stdout captured via
:func:`repro.experiments.executor.capture_stdout`.  The SHA-256 of the
captured text is compared against the checked-in ``golden.json``; a
mismatch fails the check *naming the experiment* and showing a unified
diff against the recorded text.

Intentional output changes are recorded with::

    repro verify --update-golden

which regenerates ``golden.json`` from the current tree and reports
which experiments changed.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conform.report import Section
from repro.experiments.executor import capture_stdout

#: The checked-in golden file (lives inside the package, next to this
#: module, so ``--update-golden`` writes into the source tree).
GOLDEN_PATH = Path(__file__).with_name("golden.json")


def golden_path() -> Path:
    """The golden file for the active transport.

    ``GOLDEN_PATH`` (the historical name, which tests monkeypatch)
    stays authoritative for the default TCP transport, so the recorded
    TCP digests assert byte-identity across the transport refactor.  A
    verify run under ``REPRO_TRANSPORT=quic`` reads and writes a
    sibling ``golden_quic.json`` instead — each transport's stdout is
    its own contract.
    """
    from repro.transport import resolve_transport

    transport = resolve_transport()
    if transport == "tcp":
        return GOLDEN_PATH
    return GOLDEN_PATH.with_name(f"golden_{transport}.json")


#: Test-only hook: when set to an experiment name, that experiment's
#: captured stdout gets one byte perturbed — used by the test suite to
#: prove a single flipped byte fails verify with the experiment named.
PERTURB_ENV = "REPRO_GOLDEN_PERTURB"

#: Experiment name -> CLI argv at the quick profile.  Workers are
#: pinned to 1 so a ``REPRO_WORKERS`` in the environment cannot change
#: what the digests describe (the determinism matrix covers parallel
#: execution separately).
EXPERIMENTS: Dict[str, List[str]] = {
    "baseline": ["baseline", "--trials", "2", "--workers", "1"],
    "table1": ["table1", "--trials", "2", "--workers", "1"],
    "table2": ["table2", "--trials", "2", "--workers", "1"],
    "fig1": ["fig1", "--workers", "1"],
    "fig5": ["fig5", "--trials", "2", "--workers", "1"],
    "fig6": ["fig6", "--trials", "2", "--workers", "1"],
    "delay": ["delay", "--trials", "2", "--workers", "1"],
    "ablations": ["ablations", "--trials", "2", "--workers", "1"],
    "trigger": ["trigger", "--trials", "2", "--workers", "1"],
    "streaming": ["streaming", "--trials", "2", "--workers", "1"],
    "partialmux": ["partialmux", "--trials", "2", "--workers", "1"],
    "generalization": ["generalization", "--trials", "2", "--workers", "1"],
    "fingerprint": ["fingerprint", "--workers", "1"],
    # transport-study pins both transports internally, so its golden
    # bytes are independent of REPRO_TRANSPORT.
    "transport-study": ["transport-study", "--trials", "16", "--workers", "1"],
    "robustness-study": [
        "robustness-study", "--quick", "--trials", "1", "--workers", "1",
    ],
    # The E19 frontier is pure integer arithmetic over counter streams:
    # its stdout is independent of transport and backend, and the
    # determinism matrix additionally pins workers-4 and kill-resume.
    "infer-study": ["infer-study", "--trials", "2", "--workers", "1"],
}

#: The ``--quick`` golden subset (fast, and spanning three different
#: aggregation paths: estimator-only, trial sweep, defense study).
QUICK_SUBSET = ("fig1", "table1", "partialmux")


def select_experiments(
    quick: bool = False, only: Optional[Sequence[str]] = None
) -> List[str]:
    """Resolve the experiment list a verify run covers.

    Raises:
        ValueError: when ``only`` names an unregistered experiment.
    """
    if only:
        unknown = [name for name in only if name not in EXPERIMENTS]
        if unknown:
            raise ValueError(
                f"unknown golden experiment(s) {unknown}; "
                f"registered: {', '.join(EXPERIMENTS)}"
            )
        return list(only)
    if quick:
        return list(QUICK_SUBSET)
    return list(EXPERIMENTS)


def capture(name: str, extra_argv: Sequence[str] = ()) -> str:
    """Run one experiment's CLI entry and return its captured stdout.

    Raises:
        RuntimeError: when the CLI exits non-zero.
    """
    from repro import cli

    argv = EXPERIMENTS[name] + list(extra_argv)
    with capture_stdout() as buffer:
        code = cli.main(argv)
    if code != 0:
        raise RuntimeError(f"experiment {name!r} exited with code {code}")
    text = buffer.getvalue()
    if os.environ.get(PERTURB_ENV) == name and text:
        # Off-by-one on the last visible byte (test-only, see
        # PERTURB_ENV): proves a single-byte drift fails verify with
        # this experiment named in the report.
        index = len(text.rstrip()) - 1
        flipped = "0" if text[index] != "0" else "1"
        text = text[:index] + flipped + text[index + 1:]
    return text


def digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def load_golden() -> Dict[str, Dict[str, object]]:
    """The checked-in golden entries (empty when missing)."""
    path = golden_path()
    if not path.exists():
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return payload.get("experiments", {})


def write_golden(captures: Dict[str, str]) -> None:
    """Record digests (and the text, for diffing) of ``captures``."""
    entries = load_golden()
    for name, text in captures.items():
        entries[name] = {
            "argv": EXPERIMENTS[name],
            "sha256": digest(text),
            "lines": text.splitlines(),
        }
    payload = {
        "version": 1,
        "profile": "quick",
        "experiments": {name: entries[name] for name in sorted(entries)},
    }
    with open(golden_path(), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _diff(recorded_lines: List[str], text: str, name: str) -> str:
    diff_lines = list(difflib.unified_diff(
        recorded_lines, text.splitlines(),
        fromfile=f"golden/{name}", tofile=f"current/{name}", lineterm="",
    ))
    if len(diff_lines) > 24:
        diff_lines = diff_lines[:24] + [
            f"... ({len(diff_lines) - 24} more diff lines)"
        ]
    return "\n".join(diff_lines)


def run_checks(
    names: Sequence[str], update: bool = False
) -> Tuple[Dict[str, str], Section]:
    """Capture each experiment and compare (or update) its golden.

    Returns the captured texts — the determinism matrix reuses them as
    its serial reference, so verify never runs the serial cell twice —
    and the report section.
    """
    title = "Golden masters" + (" (updating)" if update else "")
    section = Section(title)
    captures: Dict[str, str] = {}
    recorded = load_golden()
    for name in names:
        started = time.monotonic()
        try:
            text = capture(name)
        except Exception as error:  # noqa: BLE001 - reported, not raised
            section.add(
                f"golden:{name}", False,
                f"capture failed: {type(error).__name__}: {error}",
                time.monotonic() - started,
            )
            continue
        captures[name] = text
        elapsed = time.monotonic() - started
        actual = digest(text)
        entry = recorded.get(name)
        if update:
            if entry is None:
                detail = f"recorded {actual[:12]} (new)"
            elif entry.get("sha256") == actual:
                detail = f"unchanged ({actual[:12]})"
            else:
                detail = (
                    f"changed {str(entry.get('sha256'))[:12]} -> {actual[:12]}"
                )
            section.add(f"golden:{name}", True, detail, elapsed)
        elif entry is None:
            section.add(
                f"golden:{name}", False,
                "no recorded golden — run `repro verify --update-golden`",
                elapsed,
            )
        elif entry.get("sha256") != actual:
            section.add(
                f"golden:{name}", False,
                f"stdout drifted from golden "
                f"({str(entry.get('sha256'))[:12]} -> {actual[:12]})\n"
                + _diff(list(entry.get("lines", [])), text, name),
                elapsed,
            )
        else:
            section.add(f"golden:{name}", True, actual[:12], elapsed)
    if update and captures:
        write_golden(captures)
    return captures, section
