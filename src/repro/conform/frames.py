"""HTTP/2 frame wire round-trip harness for ``repro verify``.

Drives :mod:`repro.h2.wire` over a fixed corpus (one of every frame
type with representative field values) plus a deterministic fuzz sweep
(``random.Random(0)``), asserting for every frame ``f``:

* ``len(encode_frame(f)) == f.wire_length`` — the symbolic size
  accounting and the binary layout agree;
* ``encode(decode(encode(f))) == encode(f)`` — byte-exact round trip;
* ``frame_signature(decode(encode(f))) == frame_signature(f)`` — every
  structural field survives the wire;

plus an HPACK encoder/decoder pair replaying random header lists (with
periodic table resizes) and a malformed-input sweep that must raise
:class:`~repro.h2.wire.WireError`.

The Hypothesis twins of these checks live in
``tests/test_property_conformance.py``; this module keeps ``repro
verify`` dependency-free and deterministic.
"""

from __future__ import annotations

import random
import string
from typing import List, Tuple

from repro.conform.report import Section
from repro.h2.errors import H2ErrorCode
from repro.h2.frames import (
    ContinuationFrame,
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.h2.wire import (
    WireError,
    decode_frame,
    decode_frames,
    encode_frame,
    frame_signature,
)
from repro.hpack.codec import HeaderBlock, HpackDecoder, HpackEncoder
from repro.hpack.table import STATIC_TABLE

#: Header names the fuzzers draw from (static-table names plus customs).
_NAMES = tuple(entry.name for entry in STATIC_TABLE) + (
    "x-custom-key", "x-request-id", "x-quiz-step",
)

_VALUE_ALPHABET = string.ascii_letters + string.digits + " -_./:;=,"


def fixed_corpus() -> List[Frame]:
    """One frame of every type, fields exercised away from defaults."""
    block = HeaderBlock((), 33)
    return [
        DataFrame(stream_id=5, data_bytes=1200, end_stream=True),
        DataFrame(stream_id=7, data_bytes=64, padding=17),
        HeadersFrame(stream_id=3, block=block, end_stream=True,
                     end_headers=False),
        HeadersFrame(stream_id=9, block=block, priority_weight=220,
                     priority_depends_on=3, priority_exclusive=True),
        HeadersFrame(stream_id=11),
        PriorityFrame(stream_id=5, depends_on=3, weight=256, exclusive=True),
        RstStreamFrame(stream_id=5, error_code=H2ErrorCode.CANCEL),
        SettingsFrame(settings={0x1: 4096, 0x3: 100, 0x4: 65535}),
        SettingsFrame(ack=True),
        PushPromiseFrame(stream_id=3, promised_stream_id=10, block=block),
        PingFrame(),
        PingFrame(ack=True),
        GoAwayFrame(last_stream_id=41,
                    error_code=H2ErrorCode.ENHANCE_YOUR_CALM,
                    debug_bytes=12),
        WindowUpdateFrame(stream_id=0, increment=65535),
        WindowUpdateFrame(stream_id=5, increment=1),
        ContinuationFrame(stream_id=3, block_bytes=900, end_headers=True),
    ]


def random_header_list(rng: random.Random) -> List[Tuple[str, str]]:
    """A plausible header list: static names, repeats, random values."""
    headers: List[Tuple[str, str]] = []
    for _ in range(rng.randint(1, 12)):
        name = rng.choice(_NAMES)
        length = rng.randint(0, 40)
        value = "".join(rng.choice(_VALUE_ALPHABET) for _ in range(length))
        headers.append((name, value))
    return headers


def random_frame(rng: random.Random) -> Frame:
    """One random frame; every type and flag combination reachable."""
    stream = rng.randrange(1, 1 << 31, 2)
    kind = rng.randrange(10)
    if kind == 0:
        return DataFrame(
            stream_id=stream,
            data_bytes=rng.randint(0, 1 << 14),
            end_stream=rng.random() < 0.5,
            padding=rng.choice((0, 0, rng.randint(1, 255))),
        )
    if kind == 1:
        block_len = rng.randint(0, 4096)
        weight = rng.choice((None, rng.randint(1, 256)))
        return HeadersFrame(
            stream_id=stream,
            block=HeaderBlock((), block_len) if block_len else None,
            end_stream=rng.random() < 0.5,
            end_headers=rng.random() < 0.5,
            priority_weight=weight,
            priority_depends_on=rng.randrange(1 << 31) if weight else 0,
            priority_exclusive=rng.random() < 0.5 if weight else False,
        )
    if kind == 2:
        return PriorityFrame(
            stream_id=stream,
            depends_on=rng.randrange(1 << 31),
            weight=rng.randint(1, 256),
            exclusive=rng.random() < 0.5,
        )
    if kind == 3:
        return RstStreamFrame(
            stream_id=stream, error_code=rng.choice(tuple(H2ErrorCode))
        )
    if kind == 4:
        if rng.random() < 0.25:
            return SettingsFrame(ack=True)
        return SettingsFrame(settings={
            rng.randint(1, 0xFFFF): rng.randrange(1 << 32)
            for _ in range(rng.randint(0, 6))
        })
    if kind == 5:
        block_len = rng.randint(0, 2048)
        return PushPromiseFrame(
            stream_id=stream,
            promised_stream_id=rng.randrange(2, 1 << 31, 2),
            block=HeaderBlock((), block_len) if block_len else None,
        )
    if kind == 6:
        return PingFrame(ack=rng.random() < 0.5)
    if kind == 7:
        return GoAwayFrame(
            last_stream_id=rng.randrange(1 << 31),
            error_code=rng.choice(tuple(H2ErrorCode)),
            debug_bytes=rng.randint(0, 256),
        )
    if kind == 8:
        return WindowUpdateFrame(
            stream_id=rng.choice((0, stream)),
            increment=rng.randint(1, (1 << 31) - 1),
        )
    return ContinuationFrame(
        stream_id=stream,
        block_bytes=rng.randint(0, 4096),
        end_headers=rng.random() < 0.5,
    )


def check_round_trip(frame: Frame) -> List[str]:
    """Problems with one frame's wire round trip (empty = conformant)."""
    problems: List[str] = []
    encoded = encode_frame(frame)
    if len(encoded) != frame.wire_length:
        problems.append(
            f"{frame!r}: encoded {len(encoded)} octets, "
            f"wire_length says {frame.wire_length}"
        )
    decoded, consumed = decode_frame(encoded)
    if consumed != len(encoded):
        problems.append(f"{frame!r}: decode consumed {consumed} octets")
    if frame_signature(decoded) != frame_signature(frame):
        problems.append(
            f"{frame!r}: signature drift {frame_signature(decoded)} != "
            f"{frame_signature(frame)}"
        )
    re_encoded = encode_frame(decoded)
    if re_encoded != encoded:
        problems.append(f"{frame!r}: re-encode differs")
    return problems


#: Byte sequences :func:`decode_frame` must reject.
MALFORMED = (
    ("truncated header", b"\x00\x00\x04\x00"),
    ("truncated payload", b"\x00\x00\x08\x06\x00\x00\x00\x00\x00\x01\x02"),
    ("unknown type code",
     b"\x00\x00\x00\x63\x00\x00\x00\x00\x01"),
    ("reserved stream bit",
     b"\x00\x00\x00\x00\x00\x80\x00\x00\x01"),
    ("SETTINGS length not multiple of 6",
     b"\x00\x00\x05\x04\x00\x00\x00\x00\x00" + b"\x00" * 5),
    ("PRIORITY wrong payload size",
     b"\x00\x00\x04\x02\x00\x00\x00\x00\x03" + b"\x00" * 4),
    ("WINDOW_UPDATE zero increment",
     b"\x00\x00\x04\x08\x00\x00\x00\x00\x01" + b"\x00" * 4),
    ("DATA pad length exceeds payload",
     b"\x00\x00\x03\x00\x08\x00\x00\x00\x01" + b"\xff\x00\x00"),
    ("RST_STREAM unknown error code",
     b"\x00\x00\x04\x03\x00\x00\x00\x00\x05" + b"\x00\x00\x00\x99"),
)


def run_checks(examples: int = 200) -> Section:
    """The frame-layer conformance section of a verify run."""
    section = Section("Frame wire round trip (RFC 7540 §4/§6)")

    problems: List[str] = []
    for frame in fixed_corpus():
        problems.extend(check_round_trip(frame))
    section.add("fixed corpus round trip", not problems,
                "; ".join(problems[:3]))

    rng = random.Random(0)
    fuzz_problems: List[str] = []
    for _ in range(examples):
        fuzz_problems.extend(check_round_trip(random_frame(rng)))
    section.add(
        f"frame fuzz round trip ({examples} examples)",
        not fuzz_problems, "; ".join(fuzz_problems[:3]),
    )

    stream_problems: List[str] = []
    frames = [random_frame(rng) for _ in range(50)]
    blob = b"".join(encode_frame(frame) for frame in frames)
    decoded = decode_frames(blob)
    if len(decoded) != len(frames):
        stream_problems.append(
            f"{len(decoded)} frames decoded from a {len(frames)}-frame blob"
        )
    elif blob != b"".join(encode_frame(frame) for frame in decoded):
        stream_problems.append("re-encoded blob differs")
    section.add("back-to-back frame stream", not stream_problems,
                "; ".join(stream_problems))

    hpack_problems: List[str] = []
    encoder = HpackEncoder()
    decoder = HpackDecoder()
    for index in range(examples):
        headers = random_header_list(rng)
        block = encoder.encode(headers)
        decoded_headers = decoder.decode(block)
        if decoded_headers != headers:
            hpack_problems.append(f"example {index}: decode mismatch")
            break
        # A symbolic block rides a HEADERS frame through the wire with
        # its exact octet count intact.
        frame = HeadersFrame(stream_id=1, block=block)
        wire_frame, _ = decode_frame(encode_frame(frame))
        wire_len = (
            wire_frame.block.encoded_length if wire_frame.block else 0
        )
        if wire_len != block.encoded_length:
            hpack_problems.append(
                f"example {index}: block length {block.encoded_length} "
                f"arrived as {wire_len}"
            )
            break
        if index % 25 == 24:
            # Keep the pair in sync across table-size renegotiations.
            new_size = rng.choice((0, 256, 1024, 4096))
            encoder.table.resize(new_size)
            decoder.table.resize(new_size)
    section.add(
        f"HPACK encoder/decoder fuzz ({examples} examples)",
        not hpack_problems, "; ".join(hpack_problems),
    )

    reject_problems: List[str] = []
    for name, payload in MALFORMED:
        try:
            decode_frame(payload)
        except WireError:
            continue
        except Exception as error:  # noqa: BLE001 - report wrong type
            reject_problems.append(
                f"{name}: raised {type(error).__name__} instead of WireError"
            )
        else:
            reject_problems.append(f"{name}: accepted")
    section.add("malformed input rejected", not reject_problems,
                "; ".join(reject_problems))
    return section
