"""A simulated TCP implementation.

Implements the transport mechanisms the paper's attack manipulates:

* three-way handshake and connection teardown state machine,
* cumulative ACKs, delayed ACKs and duplicate-ACK generation,
* Reno-style congestion control (slow start, congestion avoidance,
  fast retransmit / fast recovery),
* Jacobson/Karels RTT estimation with exponential RTO backoff
  (Karn's rule: retransmitted segments are never sampled),
* out-of-order reassembly with an optional *duplicate delivery* quirk
  that reproduces the paper's observation of HTTP/2 servers serving
  retransmitted GET requests again (Section IV-B).

The byte stream is modelled symbolically: applications send *messages*
(TLS records) whose lengths occupy ranges of the sequence space; no
payload bytes are materialized.  Segments carry a reference to the
sender's :class:`~repro.tcp.stream.StreamLayout`, standing in for the
self-describing byte stream on the wire.
"""

from repro.tcp.config import TCPConfig
from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.connection import TCPConnection, TCPState
from repro.tcp.listener import TCPListener
from repro.tcp.reassembly import ReassemblyBuffer
from repro.tcp.rtt import RTOEstimator
from repro.tcp.segment import TCPSegment
from repro.tcp.stream import StreamLayout

__all__ = [
    "RTOEstimator",
    "ReassemblyBuffer",
    "RenoCongestionControl",
    "StreamLayout",
    "TCPConfig",
    "TCPConnection",
    "TCPListener",
    "TCPSegment",
    "TCPState",
]
