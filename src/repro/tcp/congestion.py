"""Congestion control: Reno (default) and CUBIC.

Reno — slow start, congestion avoidance, and fast retransmit / fast
recovery with window inflation — is the testbed default: its dynamics
are simple to reason about and all calibrations were done against it.
CUBIC (RFC 8312), the Linux default in the paper's era, is provided as
a drop-in alternative (``TCPConfig.congestion_control = "cubic"``) for
sensitivity studies: its faster post-loss regrowth changes transfer
shapes but none of the attack's qualitative results.
"""

from __future__ import annotations

import math
from typing import Callable, Optional


class RenoCongestionControl:
    """Congestion window state for one connection."""

    def __init__(self, mss: int, initial_window_segments: int = 10) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd = mss * initial_window_segments
        self.ssthresh = float("inf")
        self.in_recovery = False
        self.recovery_point = 0
        self._avoidance_accumulator = 0
        # Counters for experiment reporting.
        self.fast_retransmits = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack_progress(self, acked_bytes: int, snd_una: int) -> None:
        """New data acknowledged.

        Exits fast recovery when the ACK passes the recovery point;
        otherwise grows the window (exponentially in slow start, by one
        MSS per RTT in congestion avoidance).
        """
        if self.in_recovery:
            if snd_una >= self.recovery_point:
                self.cwnd = max(self.ssthresh, 2 * self.mss)
                self.in_recovery = False
            return
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, self.mss)
        else:
            self._avoidance_accumulator += acked_bytes
            if self._avoidance_accumulator >= self.cwnd:
                self._avoidance_accumulator -= self.cwnd
                self.cwnd += self.mss

    def on_fast_retransmit(self, flight_size: int, snd_nxt: int) -> None:
        """Third duplicate ACK: halve and enter fast recovery."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_recovery = True
        self.recovery_point = snd_nxt
        self.fast_retransmits += 1

    def on_duplicate_ack_in_recovery(self) -> None:
        """Window inflation: each further dup ACK signals a departure."""
        if self.in_recovery:
            self.cwnd += self.mss

    def on_timeout(self, flight_size: int) -> None:
        """Retransmission timeout: collapse to one segment."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self._avoidance_accumulator = 0
        self.timeouts += 1

    def __repr__(self) -> str:
        phase = (
            "recovery" if self.in_recovery
            else ("slow-start" if self.in_slow_start else "avoidance")
        )
        return f"RenoCongestionControl(cwnd={self.cwnd}, ssthresh={self.ssthresh}, {phase})"


class CubicCongestionControl:
    """CUBIC congestion control (RFC 8312, simplified).

    The window grows along a cubic curve anchored at the window size
    before the last loss (``w_max``): concave regrowth toward w_max,
    a plateau around it, then convex probing beyond.  A TCP-friendly
    lower bound keeps it at least as aggressive as Reno at small
    bandwidth-delay products.

    ``now`` supplies the simulated clock (CUBIC growth is a function of
    time since the last loss, unlike Reno's pure ACK counting).
    """

    #: RFC 8312 constants.
    C = 0.4
    BETA = 0.7

    def __init__(
        self,
        mss: int,
        now: Callable[[], float],
        initial_window_segments: int = 10,
    ) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self._now = now
        self.cwnd = mss * initial_window_segments
        self.ssthresh = float("inf")
        self.in_recovery = False
        self.recovery_point = 0
        self._w_max = float(self.cwnd)
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        self._reno_window = float(self.cwnd)
        self.fast_retransmits = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    # -- growth ----------------------------------------------------------

    def _segments(self, window_bytes: float) -> float:
        return window_bytes / self.mss

    def _begin_epoch(self) -> None:
        self._epoch_start = self._now()
        w_max_seg = self._segments(self._w_max)
        cwnd_seg = self._segments(self.cwnd)
        if w_max_seg > cwnd_seg:
            self._k = ((w_max_seg - cwnd_seg) / self.C) ** (1.0 / 3.0)
        else:
            self._k = 0.0
        self._reno_window = float(self.cwnd)

    def on_ack_progress(self, acked_bytes: int, snd_una: int) -> None:
        if self.in_recovery:
            if snd_una >= self.recovery_point:
                self.in_recovery = False
                self._begin_epoch()
            return
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, self.mss)
            return
        if self._epoch_start is None:
            self._begin_epoch()
        elapsed = self._now() - self._epoch_start
        target_seg = (
            self.C * (elapsed - self._k) ** 3
            + self._segments(self._w_max)
        )
        cwnd_seg = self._segments(self.cwnd)
        # TCP-friendly region: emulate Reno's one-MSS-per-RTT growth.
        self._reno_window += self.mss * (acked_bytes / max(self.cwnd, 1))
        target_seg = max(target_seg, self._segments(self._reno_window))
        if target_seg > cwnd_seg:
            # Spread the approach to the target across the window's ACKs.
            increment = self.mss * (target_seg - cwnd_seg) / max(cwnd_seg, 1)
            self.cwnd += max(0, int(increment))

    # -- loss events -------------------------------------------------------

    def on_fast_retransmit(self, flight_size: int, snd_nxt: int) -> None:
        self._w_max = float(self.cwnd)
        reduced = max(int(self.cwnd * self.BETA), 2 * self.mss)
        self.ssthresh = reduced
        self.cwnd = reduced + 3 * self.mss
        self.in_recovery = True
        self.recovery_point = snd_nxt
        self.fast_retransmits += 1

    def on_duplicate_ack_in_recovery(self) -> None:
        if self.in_recovery:
            self.cwnd += self.mss

    def on_timeout(self, flight_size: int) -> None:
        self._w_max = float(max(self.cwnd, self.mss))
        self.ssthresh = max(int(self.cwnd * self.BETA), 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self._epoch_start = None
        self.timeouts += 1

    def __repr__(self) -> str:
        phase = (
            "recovery" if self.in_recovery
            else ("slow-start" if self.in_slow_start else "cubic")
        )
        return f"CubicCongestionControl(cwnd={self.cwnd}, {phase})"


def make_congestion_control(
    algorithm: str,
    mss: int,
    initial_window_segments: int,
    now: Callable[[], float],
):
    """Factory used by :class:`~repro.tcp.connection.TCPConnection`.

    Raises:
        ValueError: for unknown algorithm names.
    """
    if algorithm == "reno":
        return RenoCongestionControl(mss, initial_window_segments)
    if algorithm == "cubic":
        return CubicCongestionControl(mss, now, initial_window_segments)
    raise ValueError(f"unknown congestion control {algorithm!r}")
