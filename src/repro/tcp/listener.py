"""The passive (server) side of connection establishment.

A :class:`TCPListener` owns a well-known port, demultiplexes arriving
packets to per-peer :class:`~repro.tcp.connection.TCPConnection`
objects, and creates a new connection whenever a SYN from an unknown
peer arrives.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.netsim.address import Endpoint
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.segment import SYN


class TCPListener:
    """Accepts inbound connections on one port.

    Args:
        on_accept: called with each newly created server-side
            connection, *before* the SYN-ACK is sent, so the caller can
            install ``on_message`` / ``on_established`` callbacks.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        port: int,
        on_accept: Callable[[TCPConnection], None],
        config: Optional[TCPConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self._sim = sim
        self._host = host
        self._port = port
        self._on_accept = on_accept
        self._config = config or TCPConfig()
        self._trace = trace
        self._connections: Dict[Endpoint, TCPConnection] = {}
        host.bind(port, self._dispatch)

    @property
    def port(self) -> int:
        return self._port

    @property
    def connections(self) -> Dict[Endpoint, TCPConnection]:
        """Live view of accepted connections, keyed by peer endpoint."""
        return self._connections

    def close(self) -> None:
        """Stop listening; existing connections keep running."""
        self._host.unbind(self._port)

    def _dispatch(self, packet: Packet) -> None:
        peer = packet.src
        connection = self._connections.get(peer)
        if connection is None:
            segment = packet.segment
            if segment is None or not segment.has(SYN):
                return  # Stray non-SYN for an unknown peer: ignore.
            connection = TCPConnection(
                sim=self._sim,
                host=self._host,
                local_port=self._port,
                remote=peer,
                config=self._config,
                trace=self._trace,
                owns_port=False,
                name=f"server:{peer}",
            )
            self._connections[peer] = connection
            self._on_accept(connection)
            connection.accept_syn()
            return
        connection.handle_packet(packet)

    def __repr__(self) -> str:
        return f"TCPListener(port={self._port}, peers={len(self._connections)})"
