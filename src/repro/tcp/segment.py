"""TCP segments.

A segment names a half-open range ``[seq, seq + payload_bytes)`` of the
sender's sequence space.  Instead of carrying bytes it carries a
reference to the sender's :class:`~repro.tcp.stream.StreamLayout`, which
maps sequence ranges back to application messages — the simulated
equivalent of the byte stream describing itself.  ``tls_records`` lists
the TLS record headers that *begin* inside the segment, which is
exactly the per-packet information tshark surfaces to the adversary.

Flag sets are interned: the handful of combinations TCP actually uses
(pure ACK, SYN, SYN|ACK, FIN|ACK, RST|ACK) are shared module-level
``frozenset`` constants, so the per-segment hot path — one segment per
delivered packet, hundreds of thousands per experiment — never
allocates a fresh set.  Use :func:`flag_set` to normalize any custom
combination to its interned instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Optional, Tuple

SYN = "SYN"
ACK = "ACK"
FIN = "FIN"
RST = "RST"

#: Interned flag combinations — the ones the state machine emits.
FLAGS_NONE: FrozenSet[str] = frozenset()
FLAGS_SYN: FrozenSet[str] = frozenset({SYN})
FLAGS_ACK: FrozenSet[str] = frozenset({ACK})
FLAGS_FIN: FrozenSet[str] = frozenset({FIN})
FLAGS_RST: FrozenSet[str] = frozenset({RST})
FLAGS_SYN_ACK: FrozenSet[str] = frozenset({SYN, ACK})
FLAGS_FIN_ACK: FrozenSet[str] = frozenset({FIN, ACK})
FLAGS_RST_ACK: FrozenSet[str] = frozenset({RST, ACK})

#: Intern table: frozenset → its canonical instance.  At most 16
#: combinations of the four flags exist, so the table never grows
#: beyond that.
_INTERNED = {
    flags: flags
    for flags in (
        FLAGS_NONE, FLAGS_SYN, FLAGS_ACK, FLAGS_FIN, FLAGS_RST,
        FLAGS_SYN_ACK, FLAGS_FIN_ACK, FLAGS_RST_ACK,
    )
}


def flag_set(flags: Iterable[str]) -> FrozenSet[str]:
    """Normalize a flag iterable to its interned ``frozenset``.

    Already-interned frozensets are returned as-is without rehashing a
    new set; novel combinations are interned on first use so repeated
    emissions share one instance.
    """
    if type(flags) is frozenset:
        cached = _INTERNED.get(flags)
        if cached is not None:
            return cached
        _INTERNED[flags] = flags
        return flags
    frozen = frozenset(flags)
    cached = _INTERNED.get(frozen)
    if cached is not None:
        return cached
    _INTERNED[frozen] = frozen
    return frozen


@dataclass(slots=True)
class TCPSegment:
    """One TCP segment (header plus symbolic payload)."""

    seq: int
    ack: int
    flags: FrozenSet[str]
    payload_bytes: int = 0
    window: int = 1 << 20
    option_bytes: int = 12
    layout: Optional[Any] = None  # StreamLayout of the sender
    tls_records: Tuple[Any, ...] = field(default_factory=tuple)
    is_retransmission: bool = False
    #: SACK blocks: the receiver's out-of-order ranges (up to 3, as the
    #: option space allows).  Empty when SACK is off or unnecessary.
    sack_blocks: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Single branch on the common pure-ACK path (payload_bytes == 0).
        if self.payload_bytes != 0:
            if self.payload_bytes < 0:
                raise ValueError("payload length must be non-negative")
            if self.layout is None:
                raise ValueError("data segments must reference a stream layout")

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's payload."""
        return self.seq + self.payload_bytes

    def has(self, flag: str) -> bool:
        """True when the given control flag is set."""
        return flag in self.flags

    @property
    def is_pure_ack(self) -> bool:
        """True for a dataless segment whose only job is acknowledging."""
        return self.payload_bytes == 0 and self.flags == FLAGS_ACK

    def __repr__(self) -> str:
        flag_str = "|".join(sorted(self.flags)) or "-"
        retx = " retx" if self.is_retransmission else ""
        return (
            f"TCPSegment(seq={self.seq}, ack={self.ack}, {flag_str}, "
            f"len={self.payload_bytes}{retx})"
        )
