"""TCP segments.

A segment names a half-open range ``[seq, seq + payload_bytes)`` of the
sender's sequence space.  Instead of carrying bytes it carries a
reference to the sender's :class:`~repro.tcp.stream.StreamLayout`, which
maps sequence ranges back to application messages — the simulated
equivalent of the byte stream describing itself.  ``tls_records`` lists
the TLS record headers that *begin* inside the segment, which is
exactly the per-packet information tshark surfaces to the adversary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional, Tuple

SYN = "SYN"
ACK = "ACK"
FIN = "FIN"
RST = "RST"


@dataclass
class TCPSegment:
    """One TCP segment (header plus symbolic payload)."""

    seq: int
    ack: int
    flags: FrozenSet[str]
    payload_bytes: int = 0
    window: int = 1 << 20
    option_bytes: int = 12
    layout: Optional[Any] = None  # StreamLayout of the sender
    tls_records: Tuple[Any, ...] = field(default_factory=tuple)
    is_retransmission: bool = False
    #: SACK blocks: the receiver's out-of-order ranges (up to 3, as the
    #: option space allows).  Empty when SACK is off or unnecessary.
    sack_blocks: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload length must be non-negative")
        if self.payload_bytes > 0 and self.layout is None:
            raise ValueError("data segments must reference a stream layout")

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's payload."""
        return self.seq + self.payload_bytes

    def has(self, flag: str) -> bool:
        """True when the given control flag is set."""
        return flag in self.flags

    @property
    def is_pure_ack(self) -> bool:
        """True for a dataless segment whose only job is acknowledging."""
        return (
            self.payload_bytes == 0
            and ACK in self.flags
            and not (self.flags - {ACK})
        )

    def __repr__(self) -> str:
        flag_str = "|".join(sorted(self.flags)) or "-"
        retx = " retx" if self.is_retransmission else ""
        return (
            f"TCPSegment(seq={self.seq}, ack={self.ack}, {flag_str}, "
            f"len={self.payload_bytes}{retx})"
        )
