"""The TCP connection: state machine, sender and receiver.

One :class:`TCPConnection` object is one endpoint of a connection.  The
client side creates its own ephemeral-port binding and initiates the
three-way handshake; server-side connections are created by a
:class:`~repro.tcp.listener.TCPListener` when a SYN arrives.

Simplifications relative to RFC 793/5681, all documented here:

* SYN and FIN do not consume sequence numbers; control segments are
  distinguished purely by flags and data sequence space starts at 0.
* The advertised receive window is constant (window scaling implied).
* No SACK; loss recovery is Reno fast-retransmit plus RTO.

Everything the paper's attack leans on — duplicate ACKs, fast
retransmit, RTO with exponential backoff, cwnd collapse, and the
duplicate-request delivery quirk — is implemented faithfully.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional

from repro.netsim.address import Endpoint
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.simkernel.simulator import Simulator
from repro.simkernel.timers import Timer
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.tcp.congestion import make_congestion_control
from repro.tcp.reassembly import ReassemblyBuffer
from repro.tcp.rtt import RTOEstimator
from repro.tcp.segment import (
    ACK,
    FIN,
    FLAGS_ACK,
    FLAGS_FIN_ACK,
    FLAGS_RST_ACK,
    FLAGS_SYN,
    FLAGS_SYN_ACK,
    RST,
    SYN,
    TCPSegment,
    flag_set,
)
from repro.tcp.stream import StreamLayout


class TCPState(enum.Enum):
    """Connection states (RFC 793 names)."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    CLOSING = "CLOSING"
    TIME_WAIT = "TIME_WAIT"


class TCPConnection:
    """One endpoint of a simulated TCP connection.

    Callbacks (all optional):
        on_established: invoked once when the handshake completes.
        on_message(message, duplicate): an application message (TLS
            record) has been fully received; ``duplicate`` is True when
            the delivery was triggered by a retransmitted segment under
            the ``deliver_duplicate_messages`` quirk.
        on_close(reset): the connection finished (``reset`` True if RST).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        local_port: int,
        remote: Endpoint,
        config: Optional[TCPConfig] = None,
        trace: Optional[TraceLog] = None,
        owns_port: bool = True,
        name: str = "",
    ) -> None:
        self._sim = sim
        self._host = host
        self.local = host.endpoint(local_port)
        self.remote = remote
        self.config = config or TCPConfig()
        self._trace = trace
        self.name = name or f"{self.local}->{self.remote}"
        self.state = TCPState.CLOSED

        # Sender state.
        self.layout = StreamLayout()
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0  # highest sequence ever transmitted
        self.cc = make_congestion_control(
            self.config.congestion_control,
            self.config.mss,
            self.config.initial_window_segments,
            now=lambda: self._sim.now,
        )
        self.rto = RTOEstimator(self.config.min_rto, self.config.max_rto)
        self.peer_window = self.config.receive_window
        self._dupacks = 0
        self._retransmit_timer = Timer(sim, self._on_rto, name=f"{self.name}.rto")
        self._sample_end: Optional[int] = None
        self._sample_time = 0.0
        self.retransmitted_segments = 0
        #: SACK scoreboard: peer-reported received ranges above snd_una.
        self._sack_scoreboard: list = []
        self._syn_time = 0.0
        self._fin_sent = False
        self._fin_seq: Optional[int] = None

        # Receiver state.
        self.reassembly = ReassemblyBuffer()
        self._peer_layout: Optional[StreamLayout] = None
        self._delivered_upto = 0
        self._segments_since_ack = 0
        self._delack_timer = Timer(sim, self._send_ack_now, name=f"{self.name}.delack")
        self._fin_received = False

        # Callbacks.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_message: Optional[Callable[[Any, bool], None]] = None
        self.on_close: Optional[Callable[[bool], None]] = None
        #: Invoked whenever acknowledged progress frees send-buffer space,
        #: so the application (HTTP/2 write pump) can push more data.
        self.on_writable: Optional[Callable[[], None]] = None

        self._owns_port = owns_port
        if owns_port:
            host.bind(local_port, self.handle_packet)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Client side: start the three-way handshake."""
        if self.state is not TCPState.CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = TCPState.SYN_SENT
        self._syn_time = self._sim.now
        self._emit(FLAGS_SYN)
        self._retransmit_timer.start(self.rto.rto)
        self._record("tcp.syn_sent")

    def accept_syn(self) -> None:
        """Server side: respond to a received SYN (called by the listener)."""
        self.state = TCPState.SYN_RCVD
        self._emit(FLAGS_SYN_ACK)
        self._retransmit_timer.start(self.rto.rto)
        self._record("tcp.syn_rcvd")

    def send_message(self, message: Any, length: Optional[int] = None) -> None:
        """Queue an application message (TLS record) for transmission."""
        if self.state not in (
            TCPState.ESTABLISHED,
            TCPState.CLOSE_WAIT,
            TCPState.SYN_RCVD,
            TCPState.SYN_SENT,
        ):
            raise RuntimeError(f"send_message() in state {self.state}")
        self.layout.append(message, length)
        self._try_send()

    def close(self) -> None:
        """Begin an orderly shutdown (FIN after pending data drains)."""
        if self.state is TCPState.ESTABLISHED:
            self.state = TCPState.FIN_WAIT_1
        elif self.state is TCPState.CLOSE_WAIT:
            self.state = TCPState.LAST_ACK
        else:
            return
        self._fin_sent = True
        self._maybe_send_fin()

    def reset(self) -> None:
        """Abort the connection with RST."""
        if self.state is TCPState.CLOSED:
            return
        self._emit(FLAGS_RST_ACK)
        self._teardown(reset=True)

    @property
    def sim(self) -> Simulator:
        """The simulator this connection runs on."""
        return self._sim

    @property
    def is_closed(self) -> bool:
        """Whether the connection has fully terminated (transport API)."""
        return self.state is TCPState.CLOSED

    @property
    def bytes_in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def unacked_buffered_bytes(self) -> int:
        """Bytes written by the application but not yet acknowledged —
        the occupancy of a real socket's send buffer."""
        return self.layout.next_seq - self.snd_una

    @property
    def send_window(self) -> int:
        """Usable window: min(cwnd, peer receive window)."""
        return min(self.cc.cwnd, self.peer_window)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Entry point for packets addressed to this connection."""
        segment: TCPSegment = packet.segment
        if segment is None:
            return
        if segment.has(RST):
            self._record("tcp.rst_received")
            self._teardown(reset=True)
            return

        if self.state is TCPState.SYN_SENT:
            if segment.has(SYN) and segment.has(ACK):
                self._retransmit_timer.cancel()
                if self.rto.backoff == 1:
                    # Karn: only sample when the SYN was not retransmitted.
                    self.rto.on_sample(self._sim.now - self._syn_time)
                self.state = TCPState.ESTABLISHED
                self._send_ack_now()
                self._record("tcp.established", role="client")
                if self.on_established:
                    self.on_established()
                self._try_send()
            return

        if self.state is TCPState.SYN_RCVD:
            if segment.has(ACK) and not segment.has(SYN):
                self._retransmit_timer.cancel()
                self.state = TCPState.ESTABLISHED
                self._record("tcp.established", role="server")
                if self.on_established:
                    self.on_established()
                # Fall through: the ACK may carry data.
            elif segment.has(SYN):
                # Duplicate SYN: re-answer.
                self._emit(FLAGS_SYN_ACK)
                return

        if self.state is TCPState.CLOSED:
            return

        if segment.has(ACK):
            self._handle_ack(segment)
        if segment.payload_bytes > 0:
            self._handle_data(segment)
        if segment.has(FIN):
            self._handle_fin(segment)

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        if self.state not in (
            TCPState.ESTABLISHED,
            TCPState.CLOSE_WAIT,
            TCPState.FIN_WAIT_1,
            TCPState.LAST_ACK,
        ):
            return
        limit = self.send_window
        while (
            self.snd_nxt < self.layout.next_seq
            and self.bytes_in_flight < limit
        ):
            # SACK: never resend ranges the peer already holds.
            skipped = self._skip_sacked(self.snd_nxt)
            if skipped != self.snd_nxt:
                self.snd_nxt = skipped
                continue
            available = self.layout.next_seq - self.snd_nxt
            budget = limit - self.bytes_in_flight
            length = min(self.config.mss, available, budget)
            if length <= 0:
                break
            # Clip at the next sacked range so chunks stay hole-aligned.
            next_sacked = self._next_sacked_start(self.snd_nxt)
            if next_sacked is not None:
                length = min(length, next_sacked - self.snd_nxt)
            # After an RTO rewound snd_nxt (go-back-N), sends below
            # snd_max are retransmissions of previously sent data.
            retransmission = self.snd_nxt < self.snd_max
            self._send_data_segment(self.snd_nxt, length, retransmission)
            self.snd_nxt += length
        if self.snd_una < self.snd_nxt and not self._retransmit_timer.armed:
            self._retransmit_timer.start(self.rto.rto)
        self._maybe_send_fin()

    def _maybe_send_fin(self) -> None:
        if (
            self._fin_sent
            and self._fin_seq is None
            and self.snd_nxt >= self.layout.next_seq
        ):
            # The FIN consumes one sequence number so its ACK is
            # distinguishable (ack = fin_seq + 1).
            self._fin_seq = self.snd_nxt
            self._emit(FLAGS_FIN_ACK)
            self.snd_nxt += 1
            self.snd_max = max(self.snd_max, self.snd_nxt)
            if not self._retransmit_timer.armed:
                self._retransmit_timer.start(self.rto.rto)
            self._record("tcp.fin_sent")

    def _own_sack_blocks(self) -> tuple:
        """Out-of-order ranges to advertise (up to 3, SACK enabled)."""
        if not self.config.sack:
            return ()
        return tuple(self.reassembly.out_of_order_ranges[:3])

    def _send_data_segment(self, seq: int, length: int, retransmission: bool) -> None:
        spans = self.layout.spans_starting_in(seq, seq + length)
        sack_blocks = self._own_sack_blocks()
        segment = TCPSegment(
            seq=seq,
            ack=self.reassembly.rcv_nxt,
            flags=FLAGS_ACK,
            payload_bytes=length,
            window=self.config.receive_window,
            option_bytes=self.config.option_bytes
            + (2 + 8 * len(sack_blocks) if sack_blocks else 0),
            layout=self.layout,
            tls_records=tuple(span.message for span in spans),
            is_retransmission=retransmission,
            sack_blocks=sack_blocks,
        )
        self._transmit(segment)
        self.snd_max = max(self.snd_max, seq + length)
        if retransmission:
            self.retransmitted_segments += 1
            if (
                self._sample_end is not None
                and seq < self._sample_end
            ):
                self._sample_end = None  # Karn: discard tainted sample
        elif self._sample_end is None:
            self._sample_end = seq + length
            self._sample_time = self._sim.now
        self._segments_since_ack = 0
        self._delack_timer.cancel()

    # -- SACK scoreboard ---------------------------------------------------

    def _record_sack_blocks(self, blocks) -> None:
        """Merge peer-reported received ranges into the scoreboard."""
        for start, end in blocks:
            if end <= self.snd_una or end <= start:
                continue
            self._sack_scoreboard.append((max(start, self.snd_una), end))
        merged = []
        for start, end in sorted(self._sack_scoreboard):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._sack_scoreboard = merged

    def _prune_sack_scoreboard(self) -> None:
        self._sack_scoreboard = [
            (max(start, self.snd_una), end)
            for start, end in self._sack_scoreboard
            if end > self.snd_una
        ]

    def _skip_sacked(self, seq: int) -> int:
        """The first sequence number at or after ``seq`` not covered by
        a sacked range."""
        for start, end in self._sack_scoreboard:
            if start <= seq < end:
                return end
        return seq

    def _next_sacked_start(self, seq: int):
        """Start of the next sacked range after ``seq``, or None."""
        for start, _ in self._sack_scoreboard:
            if start > seq:
                return start
        return None

    def _handle_ack(self, segment: TCPSegment) -> None:
        self.peer_window = segment.window
        if self.config.sack and segment.sack_blocks:
            self._record_sack_blocks(segment.sack_blocks)
        ack = segment.ack
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            if self.snd_nxt < self.snd_una:
                # The ACK covers data past a go-back-N rewind point
                # (the receiver had buffered it out of order).
                self.snd_nxt = self.snd_una
            self._dupacks = 0
            self.rto.reset_backoff()
            self._prune_sack_scoreboard()
            if self._sample_end is not None and ack >= self._sample_end:
                self.rto.on_sample(self._sim.now - self._sample_time)
                self._sample_end = None
            self.cc.on_ack_progress(acked, self.snd_una)
            if self.snd_una >= self.snd_nxt:
                self._retransmit_timer.cancel()
            else:
                self._retransmit_timer.start(self.rto.rto)
            self._handle_fin_ack(ack)
            self._try_send()
            if self.on_writable:
                self.on_writable()
        elif (
            ack == self.snd_una
            and self.snd_nxt > self.snd_una
            and segment.is_pure_ack
        ):
            self._dupacks += 1
            if self._dupacks == self.config.dupack_threshold:
                self._fast_retransmit()
            elif self._dupacks > self.config.dupack_threshold:
                self.cc.on_duplicate_ack_in_recovery()
                self._try_send()

    def _fast_retransmit(self) -> None:
        length = min(self.config.mss, self.snd_nxt - self.snd_una)
        if length <= 0:
            return
        self.cc.on_fast_retransmit(self.bytes_in_flight, self.snd_nxt)
        self._record(
            "tcp.retransmit",
            kind="fast",
            seq=self.snd_una,
            length=length,
        )
        self._send_data_segment(self.snd_una, length, retransmission=True)
        self._retransmit_timer.start(self.rto.rto)

    def _on_rto(self) -> None:
        if self.state in (TCPState.SYN_SENT, TCPState.SYN_RCVD):
            # Handshake retransmission.
            flags = (
                FLAGS_SYN if self.state is TCPState.SYN_SENT else FLAGS_SYN_ACK
            )
            self.rto.on_timeout()
            self._emit(flags)
            self._retransmit_timer.start(self.rto.rto)
            self._record("tcp.retransmit", kind="handshake")
            return
        if self._fin_seq is not None and self.snd_una >= self.layout.next_seq:
            # Only the FIN is outstanding.
            self.rto.on_timeout()
            self._emit(FLAGS_FIN_ACK)
            self._retransmit_timer.start(self.rto.rto)
            self._record("tcp.retransmit", kind="fin")
            return
        if self.snd_una >= self.snd_nxt:
            return
        self.cc.on_timeout(self.bytes_in_flight)
        self.rto.on_timeout()
        self._dupacks = 0
        self._record(
            "tcp.retransmit",
            kind="rto",
            seq=self.snd_una,
            length=min(self.config.mss, self.snd_nxt - self.snd_una),
            rto=self.rto.rto,
        )
        # Go-back-N: rewind and let _try_send retransmit from snd_una as
        # the (collapsed) congestion window allows.
        self.snd_nxt = self.snd_una
        self._retransmit_timer.start(self.rto.rto)
        self._try_send()

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------

    def _handle_data(self, segment: TCPSegment) -> None:
        if self._peer_layout is None:
            self._peer_layout = segment.layout
        old_rcv_nxt = self.reassembly.rcv_nxt
        new_rcv_nxt, was_duplicate = self.reassembly.receive(
            segment.seq, segment.end_seq
        )

        if (
            was_duplicate
            and self.config.deliver_duplicate_messages
            and segment.layout is not None
        ):
            self._deliver_duplicates(segment)

        if new_rcv_nxt > old_rcv_nxt:
            self._deliver_new_messages(new_rcv_nxt)

        # ACK strategy: immediate ACK for out-of-order or duplicate
        # segments (dup ACK generation), delayed ACK otherwise.
        if was_duplicate or self.reassembly.has_gap or segment.seq > old_rcv_nxt:
            self._send_ack_now()
        elif self.config.delayed_ack:
            self._segments_since_ack += 1
            if self._segments_since_ack >= 2:
                self._send_ack_now()
            elif not self._delack_timer.armed:
                self._delack_timer.start(self.config.delayed_ack_timeout)
        else:
            self._send_ack_now()

    def _deliver_new_messages(self, upto: int) -> None:
        layout = self._peer_layout
        if layout is None:
            return
        for span in layout.spans_completed_in(self._delivered_upto, upto):
            if span.end <= self._delivered_upto:
                continue  # a reentrant delivery already covered it
            self._delivered_upto = span.end
            if self.on_message:
                self.on_message(span.message, False)

    def _deliver_duplicates(self, segment: TCPSegment) -> None:
        """The paper's quirk: a retransmitted segment that fully covers an
        already-delivered message triggers a fresh application delivery.

        Only the first covered message is re-delivered: the observed
        behaviour is one duplicate request per retransmission event
        (ReqO2*, ReqO2** in Figure 4), not one per coalesced record.
        """
        for span in segment.layout.spans_contained(segment.seq, segment.end_seq):
            if span.end <= self._delivered_upto:
                self._record(
                    "tcp.duplicate_delivery",
                    seq=span.start,
                    length=span.length,
                )
                if self.on_message:
                    self.on_message(span.message, True)
                break

    def _handle_fin(self, segment: TCPSegment) -> None:
        if self._fin_received:
            self._send_ack_now()
            return
        self._fin_received = True
        # The peer's FIN occupies one sequence number.
        self.reassembly.receive(segment.seq, segment.seq + 1)
        self._send_ack_now()
        if self.state is TCPState.ESTABLISHED:
            self.state = TCPState.CLOSE_WAIT
        elif self.state is TCPState.FIN_WAIT_1:
            self.state = TCPState.CLOSING
        elif self.state is TCPState.FIN_WAIT_2:
            self._enter_time_wait()
        self._record("tcp.fin_received")

    def _handle_fin_ack(self, ack: int) -> None:
        if self._fin_seq is None or ack <= self._fin_seq:
            return
        if self.state is TCPState.FIN_WAIT_1:
            self.state = TCPState.FIN_WAIT_2
        elif self.state is TCPState.CLOSING:
            self._enter_time_wait()
        elif self.state is TCPState.LAST_ACK:
            self._teardown(reset=False)

    def _enter_time_wait(self) -> None:
        self.state = TCPState.TIME_WAIT
        # 2*MSL truncated to something simulation-friendly.
        self._sim.schedule(1.0, lambda: self._teardown(reset=False))

    def _teardown(self, reset: bool) -> None:
        if self.state is TCPState.CLOSED:
            return
        self.state = TCPState.CLOSED
        self._retransmit_timer.cancel()
        self._delack_timer.cancel()
        if self._owns_port:
            self._host.unbind(self.local.port)
        self._record("tcp.closed", reset=reset)
        if self.on_close:
            self.on_close(reset)

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def _send_ack_now(self) -> None:
        self._delack_timer.cancel()
        self._segments_since_ack = 0
        self._emit(FLAGS_ACK)

    def _emit(self, flags) -> None:
        flags = flag_set(flags)
        seq = self.snd_nxt
        if FIN in flags and self._fin_seq is not None:
            seq = self._fin_seq  # retransmitted FINs keep their number
        sack_blocks = self._own_sack_blocks()
        segment = TCPSegment(
            seq=seq,
            ack=self.reassembly.rcv_nxt,
            flags=flags,
            payload_bytes=0,
            window=self.config.receive_window,
            option_bytes=self.config.option_bytes
            + (2 + 8 * len(sack_blocks) if sack_blocks else 0),
            sack_blocks=sack_blocks,
        )
        self._transmit(segment)

    def _transmit(self, segment: TCPSegment) -> None:
        packet = Packet(src=self.local, dst=self.remote, segment=segment)
        self._host.send(packet)

    def _record(self, category: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self._sim.now, category, conn=self.name, **fields)

    def __repr__(self) -> str:
        return (
            f"TCPConnection({self.name!r}, {self.state.value}, "
            f"una={self.snd_una}, nxt={self.snd_nxt}, cwnd={self.cc.cwnd})"
        )
