"""Backward-compatible re-export of the stream layout.

``StreamLayout``/``MessageSpan`` moved to the transport-neutral
:mod:`repro.transport.stream` so the analysis layer and non-TCP
transports can use them without importing the TCP package.  This shim
keeps ``repro.tcp.stream`` imports working.
"""

from __future__ import annotations

from repro.transport.stream import MessageSpan, StreamLayout

__all__ = ["MessageSpan", "StreamLayout"]
