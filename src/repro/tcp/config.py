"""TCP tunables, defaulting to Linux-like values of the paper's era."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TCPConfig:
    """Per-connection TCP parameters.

    Attributes:
        mss: maximum segment payload in bytes.  1448 corresponds to a
            1500-byte MTU minus IP/TCP headers and the 12-byte timestamp
            option Linux sends on every segment.
        option_bytes: TCP option bytes carried on every data/ACK segment
            (timestamps).
        initial_window_segments: initial congestion window (IW10).
        receive_window: advertised receive window in bytes; large enough
            (with window scaling implied) that the receiver is not the
            bottleneck in our scenarios.
        min_rto: lower bound on the retransmission timeout (Linux: 200 ms).
        max_rto: upper bound on the retransmission timeout.
        dupack_threshold: duplicate ACKs that trigger fast retransmit.
        delayed_ack: whether the receiver delays ACKs for full segments.
        delayed_ack_timeout: delayed-ACK timer (Linux: 40 ms).
        deliver_duplicate_messages: when True, retransmitted segments
            fully covering an already-delivered application message make
            the receiver deliver that message *again* — the server-side
            quirk the paper observed (duplicate GETs each spawn a
            handler thread).
        congestion_control: "reno" (default, what the testbed was
            calibrated against) or "cubic" (the Linux default of the
            paper's era).
        sack: enable selective acknowledgments.  The receiver reports
            its out-of-order ranges on every ACK; the sender then
            retransmits only the holes instead of going back-N.  Off by
            default (the calibrated baseline); the loss-recovery
            ablation turns it on.
    """

    mss: int = 1448
    option_bytes: int = 12
    initial_window_segments: int = 10
    receive_window: int = 1 << 20
    min_rto: float = 0.2
    max_rto: float = 60.0
    dupack_threshold: int = 3
    delayed_ack: bool = True
    delayed_ack_timeout: float = 0.04
    deliver_duplicate_messages: bool = False
    congestion_control: str = "reno"
    sack: bool = False

    def __post_init__(self) -> None:
        if self.congestion_control not in ("reno", "cubic"):
            raise ValueError(
                f"unknown congestion control {self.congestion_control!r}"
            )
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.initial_window_segments <= 0:
            raise ValueError("initial window must be positive")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("invalid RTO bounds")
        if self.dupack_threshold < 1:
            raise ValueError("dupack threshold must be >= 1")
