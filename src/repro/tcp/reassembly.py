"""Out-of-order reassembly buffer.

Tracks which parts of the peer's sequence space have arrived, merges
overlapping ranges, and advances the cumulative acknowledgement point.
"""

from __future__ import annotations

from typing import List, Tuple


class ReassemblyBuffer:
    """Byte-range reassembly with a cumulative delivery pointer."""

    def __init__(self, initial_seq: int = 0) -> None:
        self._rcv_nxt = initial_seq
        self._segments: List[Tuple[int, int]] = []  # sorted, disjoint
        self.duplicate_bytes = 0

    @property
    def rcv_nxt(self) -> int:
        """Next expected sequence number (cumulative ACK point)."""
        return self._rcv_nxt

    @property
    def out_of_order_ranges(self) -> List[Tuple[int, int]]:
        """Buffered ranges beyond the cumulative point (copy)."""
        return list(self._segments)

    @property
    def has_gap(self) -> bool:
        """True when out-of-order data is waiting on a hole."""
        return bool(self._segments)

    def receive(self, start: int, end: int) -> Tuple[int, bool]:
        """Accept range ``[start, end)``.

        Returns:
            ``(new_rcv_nxt, was_duplicate)`` where ``was_duplicate`` is
            True when the range contributed no new bytes.
        """
        if end <= start:
            return self._rcv_nxt, True
        if end <= self._rcv_nxt:
            self.duplicate_bytes += end - start
            return self._rcv_nxt, True

        clipped_start = max(start, self._rcv_nxt)
        new_bytes = self._insert(clipped_start, end)
        if not new_bytes:
            self.duplicate_bytes += end - start
        self._advance()
        return self._rcv_nxt, not new_bytes

    def _insert(self, start: int, end: int) -> bool:
        """Merge ``[start, end)`` into the buffered set; True if it added
        at least one new byte."""
        merged: List[Tuple[int, int]] = []
        added = False
        placed = False
        new_start, new_end = start, end
        for seg_start, seg_end in self._segments:
            if seg_end < new_start:
                merged.append((seg_start, seg_end))
            elif new_end < seg_start:
                if not placed:
                    if self._covers_new_bytes(new_start, new_end):
                        added = True
                    merged.append((new_start, new_end))
                    placed = True
                merged.append((seg_start, seg_end))
            else:
                # Overlap: fold the existing segment into the new one.
                if new_start < seg_start or new_end > seg_end:
                    added = True
                new_start = min(new_start, seg_start)
                new_end = max(new_end, seg_end)
        if not placed:
            if self._covers_new_bytes(new_start, new_end):
                added = True
            merged.append((new_start, new_end))
        self._segments = merged
        return added

    def _covers_new_bytes(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` is not fully covered already."""
        for seg_start, seg_end in self._segments:
            if seg_start <= start and end <= seg_end:
                return False
        return end > start

    def _advance(self) -> None:
        while self._segments and self._segments[0][0] <= self._rcv_nxt:
            seg_start, seg_end = self._segments.pop(0)
            if seg_end > self._rcv_nxt:
                self._rcv_nxt = seg_end
