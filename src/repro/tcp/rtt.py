"""RTT estimation and retransmission timeout (Jacobson/Karels).

Implements the classic ``srtt``/``rttvar`` smoothing with an RTO of
``srtt + 4 * rttvar`` clamped to ``[min_rto, max_rto]``, exponential
backoff on timeout, and Karn's rule (callers must not feed samples from
retransmitted segments).
"""

from __future__ import annotations

from typing import Optional


class RTOEstimator:
    """Tracks smoothed RTT and computes the retransmission timeout."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0,
                 initial_rto: float = 1.0) -> None:
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError("invalid RTO bounds")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._initial_rto = initial_rto
        self._srtt: Optional[float] = None
        self._rttvar: Optional[float] = None
        self._backoff = 1
        self.samples = 0

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT, or None before the first sample."""
        return self._srtt

    @property
    def rttvar(self) -> Optional[float]:
        return self._rttvar

    @property
    def backoff(self) -> int:
        """Current exponential backoff multiplier (1 when healthy)."""
        return self._backoff

    @property
    def rto(self) -> float:
        """Current retransmission timeout in seconds."""
        if self._srtt is None:
            base = self._initial_rto
        else:
            base = self._srtt + 4.0 * self._rttvar
        return min(self.max_rto, max(self.min_rto, base) * self._backoff)

    def on_sample(self, rtt: float) -> None:
        """Feed one RTT measurement (never from a retransmitted segment).

        A valid sample also resets the exponential backoff, per RFC 6298.
        """
        if rtt < 0:
            raise ValueError(f"negative RTT sample: {rtt}")
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = (
                (1 - self.BETA) * self._rttvar + self.BETA * abs(self._srtt - rtt)
            )
            self._srtt = (1 - self.ALPHA) * self._srtt + self.ALPHA * rtt
        self._backoff = 1
        self.samples += 1

    def on_timeout(self) -> None:
        """Double the RTO (capped by ``max_rto`` at evaluation time)."""
        self._backoff = min(self._backoff * 2, 64)

    def reset_backoff(self) -> None:
        """Clear exponential backoff.

        Linux resets the backoff as soon as an ACK advances ``snd_una``
        (even for ACKs of retransmitted data, which Karn's rule bars
        from RTT sampling); without this, a connection that survived a
        loss burst crawls at the backed-off RTO for tens of seconds.
        """
        self._backoff = 1

    def __repr__(self) -> str:
        srtt = f"{self._srtt * 1000:.1f}ms" if self._srtt is not None else "?"
        return f"RTOEstimator(srtt={srtt}, rto={self.rto * 1000:.1f}ms, backoff={self._backoff})"
