"""Statistical object-size inference and the padding-defense frontier.

The paper's attack identifies objects by *near-exact* TLS record-size
matching — which any padding defense trivially breaks.  Morla's HTTP/2
object-size estimation work (arXiv:1707.00641, arXiv:1607.06709) shows
the sizes still leak *statistically* under pipelining and multiplexing.
This package builds both sides of that arms race:

* :mod:`repro.infer.features` — deterministic integer feature vectors
  from middlebox-observed record sequences (lengths, histograms,
  bursts, inter-arrival statistics, cumulative-size curves);
* :mod:`repro.infer.classifiers` — a registry of seeded numpy
  classifiers (nearest-centroid, k-NN, multinomial logistic) next to
  the paper's exact-match baseline;
* :mod:`repro.infer.defenses` — the defense axis (per-record padding to
  block sizes, chaff records, response pipelining) with exact integer
  byte/latency overhead accounting;
* :mod:`repro.infer.dataset` — the seeded observation model gluing the
  zipf page population to features under each defense level;
* :mod:`repro.infer.campaign` — the frontier-at-scale mode on the
  campaign executor (shards, checkpoints, kill-resume).

Everything is integer/fixed-point end to end, so results are
bit-identical across worker counts, backends and kill-resume — the same
contract as the rest of the testbed.
"""

from repro.infer.classifiers import (
    CLASSIFIER_REGISTRY,
    Classifier,
    classifier_names,
    resolve_classifier,
)
from repro.infer.defenses import (
    DEFENSE_LEVELS,
    DefenseConfig,
    DefenseOverhead,
    defense_level,
    defense_level_names,
)
from repro.infer.features import (
    FeatureConfig,
    extract_features,
    feature_length,
    invariant_prefix_length,
)

__all__ = [
    "CLASSIFIER_REGISTRY",
    "Classifier",
    "classifier_names",
    "resolve_classifier",
    "DEFENSE_LEVELS",
    "DefenseConfig",
    "DefenseOverhead",
    "defense_level",
    "defense_level_names",
    "FeatureConfig",
    "extract_features",
    "feature_length",
    "invariant_prefix_length",
]
