"""Integer feature vectors from observed TLS record sequences.

An observation is what the middlebox sees of one object's response: a
time-ordered sequence of ``(time_us, wire_length)`` pairs, one per TLS
application-data record (the cleartext record headers expose both).
Feature extraction turns it into a fixed-length tuple of plain ints —
no floats anywhere, so the scalar path here and the vectorized kernel
in :mod:`repro.fastpath.infer` are bit-identical by construction.

Vector layout (``feature_length(config)`` entries)::

    [0]                 record count
    [1]                 total wire bytes
    [2]                 min record length
    [3]                 max record length
    [4 .. 4+B)          record-length histogram (B bins of
                        ``hist_bin_bytes``, last bin open-ended)
    -- everything above is permutation-invariant in the lengths --
    [4+B]               first record length
    [4+B+1]             final record length
    [4+B+2 .. +P)       cumulative-size curve: total bytes after
                        ceil(k*n/P) records, k = 1..P
    then                burst count, max burst bytes, max burst records
                        (bursts split where the inter-arrival gap
                        exceeds ``burst_gap_us``)
    then                inter-arrival sum, max, and count of gaps
                        exceeding ``burst_gap_us`` (microseconds)

The *invariant prefix* (first ``invariant_prefix_length(config)``
entries) depends only on the multiset of record lengths: permuting
which length arrives at which timestamp cannot change it.  The
Hypothesis suite pins that claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: One observed record: (arrival time in integer microseconds, wire length).
RecordObs = Tuple[int, int]


@dataclass(frozen=True)
class FeatureConfig:
    """Knobs of the feature extractor (all integers).

    Attributes:
        hist_bin_bytes: width of one record-length histogram bin.
        hist_bins: histogram bins; lengths at or beyond the last edge
            land in the final bin.
        curve_points: samples of the cumulative-size curve.
        burst_gap_us: inter-arrival gap (microseconds) separating two
            bursts; also the threshold of the large-gap counter.
    """

    hist_bin_bytes: int = 512
    hist_bins: int = 12
    curve_points: int = 8
    burst_gap_us: int = 1000

    def __post_init__(self) -> None:
        if self.hist_bin_bytes < 1 or self.hist_bins < 1:
            raise ValueError("histogram shape must be positive")
        if self.curve_points < 1:
            raise ValueError("curve_points must be positive")
        if self.burst_gap_us < 1:
            raise ValueError("burst_gap_us must be positive")


def invariant_prefix_length(config: FeatureConfig) -> int:
    """Features [0, this) depend only on the multiset of lengths."""
    return 4 + config.hist_bins


def feature_length(config: FeatureConfig) -> int:
    """Total entries in one feature vector."""
    return invariant_prefix_length(config) + 2 + config.curve_points + 6


def extract_features(
    records: Sequence[RecordObs], config: FeatureConfig
) -> Tuple[int, ...]:
    """The integer feature vector of one time-ordered observation.

    Raises:
        ValueError: on an empty observation (nothing to classify).
    """
    n = len(records)
    if n == 0:
        raise ValueError("cannot extract features from an empty observation")
    times = [int(t) for t, _ in records]
    lengths = [int(l) for _, l in records]

    total = sum(lengths)
    features: List[int] = [n, total, min(lengths), max(lengths)]

    hist = [0] * config.hist_bins
    top = config.hist_bins - 1
    for length in lengths:
        index = length // config.hist_bin_bytes
        hist[index if index < top else top] += 1
    features.extend(hist)

    features.append(lengths[0])
    features.append(lengths[-1])

    cumulative = []
    running = 0
    for length in lengths:
        running += length
        cumulative.append(running)
    points = config.curve_points
    for k in range(1, points + 1):
        index = -(-k * n // points) - 1  # ceil(k*n/P) - 1
        features.append(cumulative[index])

    gap_limit = config.burst_gap_us
    burst_count = 1
    burst_bytes = lengths[0]
    burst_records = 1
    max_burst_bytes = burst_bytes
    max_burst_records = 1
    ia_sum = 0
    ia_max = 0
    ia_over = 0
    for i in range(1, n):
        gap = times[i] - times[i - 1]
        ia_sum += gap
        if gap > ia_max:
            ia_max = gap
        if gap > gap_limit:
            ia_over += 1
            burst_count += 1
            burst_bytes = 0
            burst_records = 0
        burst_bytes += lengths[i]
        burst_records += 1
        if burst_bytes > max_burst_bytes:
            max_burst_bytes = burst_bytes
        if burst_records > max_burst_records:
            max_burst_records = burst_records
    features.append(burst_count)
    features.append(max_burst_bytes)
    features.append(max_burst_records)
    features.append(ia_sum)
    features.append(ia_max)
    features.append(ia_over)
    return tuple(features)


def extract_features_auto(
    observations: Sequence[Sequence[RecordObs]], config: FeatureConfig
) -> List[Tuple[int, ...]]:
    """Feature vectors for a batch, via the active backend.

    The python backend loops :func:`extract_features`; with
    ``REPRO_BACKEND=fast`` the numpy kernel in
    :mod:`repro.fastpath.infer` computes the identical integers in a
    handful of array operations.
    """
    from repro.fastpath import fast_backend_active

    if fast_backend_active():
        from repro.fastpath.infer import extract_features_batch

        return extract_features_batch(observations, config)
    return [extract_features(obs, config) for obs in observations]


def capture_record_sequence(capture, direction) -> List[RecordObs]:
    """The observed application-data record sequence of one capture.

    Reads the per-packet cleartext record headers
    (:attr:`~repro.netsim.capture.PacketRecord.tls_record_lengths`) the
    middlebox tap records, keeping records whose content type is 23 —
    the same ``ssl.record.content_type == 23`` filter the paper applies
    in tshark.  Times are integer microseconds.
    """
    sequence: List[RecordObs] = []
    for record in capture.in_direction(direction):
        for content_type, wire_length in zip(
            record.tls_content_types, record.tls_record_lengths
        ):
            if content_type == 23:
                sequence.append((round(record.time * 1_000_000), wire_length))
    return sequence


def observed_record_lengths(capture, direction) -> Tuple[int, ...]:
    """Just the wire lengths of the observed application-data records."""
    return tuple(length for _, length in capture_record_sequence(capture, direction))
