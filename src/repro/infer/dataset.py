"""The seeded observation model: pages → defended record sequences.

Glues the zipf page population to the feature extractor under each
defense level.  An *observation* is what the middlebox sees of one
object's response during a multiplexed page load:

* the object's own records, derived from the framing model the whole
  testbed shares (HTTP/2 DATA chunks of ``chunk_bytes``, one TLS record
  per frame, a HEADERS record in front — the constants of
  :mod:`repro.core.predictor`);
* the defense transform — per-record padding, interleaved chaff
  records (:class:`~repro.infer.defenses.DefenseConfig`);
* multiplexing contamination — foreign records of the page's *other*
  objects spliced in at seeded positions (suppressed when the pipeline
  defense serializes responses);
* seeded integer timing (base gap + jitter + occasional think pauses).

Every observation draws from its own counter stream named by
``(role, level, session, object, rep)``, so any subset of levels,
sessions or reps reproduces identical observations — the property that
makes shard/worker/resume slicing bit-stable.

The attacker trains on its own seeded fetches (role ``train``) and
classifies the victim's (role ``victim``); both see the same
contamination *distribution* but disjoint draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.predictor import FRAME_HEADER, RECORD_OVERHEAD, RESPONSE_HEADERS_WIRE
from repro.experiments.executor import heartbeat
from repro.infer.classifiers import classifier_names, resolve_classifier
from repro.infer.defenses import DefenseConfig, DefenseOverhead, defense_level, defense_level_names
from repro.infer.features import FeatureConfig, RecordObs, extract_features_auto
from repro.simkernel.randomstream import CounterStream, counter_stream_base
from repro.web.workload import PopulationConfig, PopulationWorkload

#: Plaintext bytes of the response HEADERS record (its wire size is the
#: shared ``RESPONSE_HEADERS_WIRE`` constant).
HEADERS_PLAINTEXT = RESPONSE_HEADERS_WIRE - RECORD_OVERHEAD


@dataclass(frozen=True)
class StudyDesign:
    """Everything one inference study derives from (picklable, frozen).

    Attributes:
        seed: master seed; every stream derives from it.
        reps: attacker training fetches per object.
        max_objects: classes per page (the largest-ranked objects).
        chunk_bytes: DATA chunk size of the framing model.
        gap_base_us / gap_jitter_us: per-record inter-arrival base and
            uniform jitter, microseconds.
        pause_one_in: one record in this many is preceded by a think
            pause of ``pause_us`` (burst structure).
        mux_max_inserts: per-observation ceiling on contamination
            records spliced in from the page's other objects.
        levels: defense-level names swept, ladder order.
        classifiers: registry names evaluated per level.
        features: the feature-extractor shape.
        population: the zipf page population knobs.
    """

    seed: int = 2020
    reps: int = 3
    max_objects: int = 8
    chunk_bytes: int = 2048
    gap_base_us: int = 400
    gap_jitter_us: int = 300
    pause_one_in: int = 20
    pause_us: int = 8000
    mux_max_inserts: int = 4
    levels: Tuple[str, ...] = defense_level_names()
    classifiers: Tuple[str, ...] = classifier_names()
    features: FeatureConfig = FeatureConfig()
    population: PopulationConfig = PopulationConfig()

    def __post_init__(self) -> None:
        if self.reps < 1:
            raise ValueError("reps must be positive")
        if self.max_objects < 2:
            raise ValueError("need at least two classes per page")
        if self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be positive")
        if self.pause_one_in < 1:
            raise ValueError("pause_one_in must be positive")
        for name in self.levels:
            defense_level(name)  # validates early, worker-side errors are ugly
        for name in self.classifiers:
            if name not in classifier_names():
                raise ValueError(
                    f"unknown classifier {name!r} "
                    f"(registered: {', '.join(classifier_names())})"
                )


def base_plaintext_records(body_bytes: int, chunk_bytes: int) -> Tuple[int, ...]:
    """Undefended plaintext record lengths of one response.

    One HEADERS record, then one record per DATA chunk — the shape the
    live server actually emits (every ``send_data`` frame becomes one
    ``send_application`` call).
    """
    if body_bytes < 1:
        raise ValueError("body must be positive")
    records = [HEADERS_PLAINTEXT]
    remaining = body_bytes
    while remaining > 0:
        chunk = min(chunk_bytes, remaining)
        remaining -= chunk
        records.append(chunk + FRAME_HEADER)
    return tuple(records)


def defended_wire_records(
    plaintext_records: Sequence[int], level: DefenseConfig
) -> Tuple[int, ...]:
    """Observed wire lengths of one response under a defense level."""
    return tuple(
        level.pad(plaintext) + RECORD_OVERHEAD
        for plaintext in plaintext_records
    )


def observation_stream(
    design: StudyDesign,
    role: str,
    level: DefenseConfig,
    session: int,
    obj: int,
    rep: int,
) -> CounterStream:
    """The independent counter stream of one observation."""
    return CounterStream(counter_stream_base(
        design.seed,
        f"infer/{role}/{level.name}/s{session}/o{obj}/r{rep}",
    ))


def observe(
    index: int,
    object_records: Sequence[Tuple[int, ...]],
    level: DefenseConfig,
    design: StudyDesign,
    stream: CounterStream,
) -> List[RecordObs]:
    """One observation of object ``index`` of a page.

    Draw order (fixed; determinism depends on it): chaff positions,
    contamination count then per-insert (object, record, position)
    triples, then per-record timing (jitter, pause) pairs.
    """
    lengths = list(object_records[index])
    chaff_wire = level.chaff_record_plaintext + RECORD_OVERHEAD
    for _ in range(level.chaff_records):
        position = stream.randint(0, len(lengths))
        lengths.insert(position, chaff_wire)
    others = len(object_records) - 1
    if not level.pipeline and others > 0:
        inserts = stream.randint(0, design.mux_max_inserts)
        for _ in range(inserts):
            pick = stream.randint(0, others - 1)
            other = pick if pick < index else pick + 1
            foreign = object_records[other]
            record = foreign[stream.randint(0, len(foreign) - 1)]
            position = stream.randint(0, len(lengths))
            lengths.insert(position, record)
    now = 0
    observation: List[RecordObs] = []
    for length in lengths:
        gap = design.gap_base_us + stream.randint(0, design.gap_jitter_us)
        if stream.randint(0, design.pause_one_in - 1) == 0:
            gap += design.pause_us
        now += gap
        observation.append((now, length))
    return observation


def level_overhead(
    base_wire: Sequence[Tuple[int, ...]],
    defended_wire: Sequence[Tuple[int, ...]],
    level: DefenseConfig,
    design: StudyDesign,
) -> DefenseOverhead:
    """Exact integer cost of serving one page at one defense level.

    Latency: each chaff record occupies one emission slot
    (``gap_base_us``); pipelining makes every response wait for all
    records — real and chaff — of the responses ahead of it.
    """
    overhead = DefenseOverhead(
        base_bytes=sum(sum(records) for records in base_wire),
        defended_bytes=sum(sum(records) for records in defended_wire),
        chaff_bytes=(
            (level.chaff_record_plaintext + RECORD_OVERHEAD)
            * level.chaff_records * len(base_wire)
        ),
        latency_us=(
            level.chaff_records * design.gap_base_us * len(base_wire)
        ),
    )
    if level.pipeline:
        preceding_records = 0
        for records in defended_wire[:-1]:
            preceding_records += len(records) + level.chaff_records
            overhead.latency_us += preceding_records * design.gap_base_us
        # Each later response waits on everything before it; the sum
        # above adds response i's queue depth once per follower.
    return overhead


def evaluate_session(session: int, design: StudyDesign) -> Dict[str, object]:
    """The full frontier of one page: every level × every classifier.

    Returns a plain-JSON dict (checkpointable) of integer counters —
    see :class:`repro.infer.summary.InferSummary.fold` for the shape.
    """
    workload = PopulationWorkload(design.seed, design.population)
    page = workload.page_spec(session)
    sizes = page.object_sizes[: design.max_objects]
    count = len(sizes)
    plaintext = [
        base_plaintext_records(body, design.chunk_bytes) for body in sizes
    ]
    base_wire = [defended_wire_records(rec, defense_level("off")) for rec in plaintext]
    labels = list(range(count))
    result: Dict[str, object] = {
        "session": session,
        "objects": count,
        "levels": {},
    }
    for level_name in design.levels:
        level = defense_level(level_name)
        defended = [defended_wire_records(rec, level) for rec in plaintext]
        train_obs = []
        train_labels = []
        for obj in labels:
            for rep in range(design.reps):
                stream = observation_stream(
                    design, "train", level, session, obj, rep
                )
                train_obs.append(observe(obj, defended, level, design, stream))
                train_labels.append(obj)
        victim_obs = [
            observe(
                obj, defended, level, design,
                observation_stream(design, "victim", level, session, obj, 0),
            )
            for obj in labels
        ]
        train_features = extract_features_auto(train_obs, design.features)
        victim_features = extract_features_auto(victim_obs, design.features)
        correct: Dict[str, int] = {}
        for classifier_name in design.classifiers:
            classifier_seed = counter_stream_base(
                design.seed,
                f"infer/clf/{level.name}/s{session}/{classifier_name}",
            )
            model = resolve_classifier(classifier_name, classifier_seed)
            model.fit(train_features, train_labels)
            predictions = model.predict(victim_features)
            correct[classifier_name] = sum(
                1 for predicted, truth in zip(predictions, labels)
                if predicted == truth
            )
        overhead = level_overhead(base_wire, defended, level, design)
        entry = overhead.to_json()
        entry["classifiers"] = correct
        result["levels"][level_name] = entry
        heartbeat()
    return result
