"""Pluggable object classifiers behind a registry.

Each classifier consumes the integer feature vectors of
:mod:`repro.infer.features` and implements ``fit`` / ``predict`` /
``model_digest``.  Three statistical models (nearest-centroid, k-NN,
multinomial logistic) are implemented directly in numpy — no new
runtime dependencies — alongside the paper's exact-match baseline,
so the frontier table compares the attack the paper ran against the
attack it did not.

Determinism contract:

* a classifier is constructed from an integer seed only; fitting the
  same data with the same seed yields a bit-identical model (pinned by
  ``model_digest()``, a SHA-256 over the canonical parameter bytes);
* every matrix product goes through ``np.einsum`` rather than BLAS
  ``dot`` — einsum's fixed-order reduction loops are reproducible
  across numpy builds, where a threaded BLAS dgemm need not be;
* ties break toward the smallest label everywhere.

Registering a new classifier::

    @register_classifier("myclf")
    def _build(seed: int) -> Classifier:
        return MyClassifier(seed)
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.simkernel.randomstream import CounterStream

#: Label returned by the exact-match baseline when nothing matches
#: within tolerance — always counted as a miss.
UNMATCHED = -1


class Classifier:
    """Fit/predict interface over integer feature vectors."""

    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def fit(
        self, features: Sequence[Sequence[int]], labels: Sequence[int]
    ) -> "Classifier":
        raise NotImplementedError

    def predict(self, features: Sequence[Sequence[int]]) -> List[int]:
        raise NotImplementedError

    def model_digest(self) -> str:
        """SHA-256 over the canonical bytes of the fitted parameters."""
        digest = hashlib.sha256()
        digest.update(f"{self.name}|seed={self.seed}".encode("utf-8"))
        for array in self._parameter_arrays():
            arr = np.ascontiguousarray(array)
            digest.update(
                f"|{arr.dtype.str}{arr.shape}".encode("utf-8")
            )
            digest.update(arr.tobytes())
        return digest.hexdigest()

    def _parameter_arrays(self) -> List[np.ndarray]:
        raise NotImplementedError


def _as_matrix(features: Sequence[Sequence[int]]) -> np.ndarray:
    matrix = np.asarray(features, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("features must be a 2-D batch of vectors")
    return matrix


def _standardize_stats(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    mean = matrix.mean(axis=0)
    centered = matrix - mean
    scale = np.sqrt((centered * centered).mean(axis=0))
    scale[scale == 0.0] = 1.0
    return mean, scale


def _squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared euclidean distances, (len(a), len(b)).

    Computed by explicit difference-and-sum (numpy pairwise reduction,
    deterministic) instead of the usual ``|a|² + |b|² - 2ab`` BLAS trick.
    """
    diff = a[:, None, :] - b[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


class ExactMatchClassifier(Classifier):
    """The paper's baseline: near-exact total-size matching.

    Fit records the integer median observed total (feature index 1) per
    label; predict matches an observation to the label whose recorded
    total is closest, *if* within ``max(tolerance_abs, 5 % of the
    recorded total)`` — the tolerance rule of
    :class:`repro.core.predictor.SizePredictor` — and to
    :data:`UNMATCHED` otherwise.  Multiplexing contamination pushes
    observed totals outside that band, which is exactly the weakness
    the statistical classifiers exploit.
    """

    name = "exact"
    TOLERANCE_ABS = 350
    TOLERANCE_PERMILLE = 50  # 5 %

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._labels: List[int] = []
        self._totals: List[int] = []

    def fit(self, features, labels) -> "ExactMatchClassifier":
        per_label: Dict[int, List[int]] = {}
        for vector, label in zip(features, labels):
            per_label.setdefault(int(label), []).append(int(vector[1]))
        self._labels = sorted(per_label)
        self._totals = []
        for label in self._labels:
            totals = sorted(per_label[label])
            # Lower median keeps the parameter an exact integer.
            self._totals.append(totals[(len(totals) - 1) // 2])
        return self

    def predict(self, features) -> List[int]:
        predictions = []
        for vector in features:
            observed = int(vector[1])
            best_label = UNMATCHED
            best_error = None
            for label, expected in zip(self._labels, self._totals):
                error = abs(observed - expected)
                tolerance = max(
                    self.TOLERANCE_ABS,
                    self.TOLERANCE_PERMILLE * expected // 1000,
                )
                if error > tolerance:
                    continue
                if best_error is None or error < best_error:
                    best_error = error
                    best_label = label
            predictions.append(best_label)
        return predictions

    def _parameter_arrays(self) -> List[np.ndarray]:
        return [
            np.asarray(self._labels, dtype=np.int64),
            np.asarray(self._totals, dtype=np.int64),
        ]


class NearestCentroidClassifier(Classifier):
    """Per-class mean in standardized feature space; nearest wins."""

    name = "centroid"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._labels = np.zeros(0, dtype=np.int64)
        self._mean = np.zeros(0)
        self._scale = np.ones(0)
        self._centroids = np.zeros((0, 0))

    def fit(self, features, labels) -> "NearestCentroidClassifier":
        matrix = _as_matrix(features)
        label_array = np.asarray(labels, dtype=np.int64)
        self._mean, self._scale = _standardize_stats(matrix)
        scaled = (matrix - self._mean) / self._scale
        self._labels = np.unique(label_array)
        self._centroids = np.stack([
            scaled[label_array == label].mean(axis=0)
            for label in self._labels
        ])
        return self

    def predict(self, features) -> List[int]:
        scaled = (_as_matrix(features) - self._mean) / self._scale
        distances = _squared_distances(scaled, self._centroids)
        # argmin returns the first minimum; labels are sorted, so ties
        # break toward the smallest label.
        return [int(self._labels[i]) for i in distances.argmin(axis=1)]

    def _parameter_arrays(self) -> List[np.ndarray]:
        return [self._labels, self._mean, self._scale, self._centroids]


class KNNClassifier(Classifier):
    """k-nearest neighbours with fully deterministic tie-breaking.

    Neighbours order by ``(distance, training index)``; the vote winner
    is the label with the highest count, smallest label first.
    """

    name = "knn"
    K = 3

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._mean = np.zeros(0)
        self._scale = np.ones(0)
        self._train = np.zeros((0, 0))
        self._labels = np.zeros(0, dtype=np.int64)

    def fit(self, features, labels) -> "KNNClassifier":
        matrix = _as_matrix(features)
        self._mean, self._scale = _standardize_stats(matrix)
        self._train = (matrix - self._mean) / self._scale
        self._labels = np.asarray(labels, dtype=np.int64)
        return self

    def predict(self, features) -> List[int]:
        scaled = (_as_matrix(features) - self._mean) / self._scale
        distances = _squared_distances(scaled, self._train)
        k = min(self.K, len(self._labels))
        order_index = np.arange(len(self._labels))
        predictions = []
        for row in distances:
            order = np.lexsort((order_index, row))
            votes: Dict[int, int] = {}
            for neighbour in order[:k]:
                label = int(self._labels[neighbour])
                votes[label] = votes.get(label, 0) + 1
            predictions.append(
                min(votes, key=lambda label: (-votes[label], label))
            )
        return predictions

    def _parameter_arrays(self) -> List[np.ndarray]:
        return [self._mean, self._scale, self._train, self._labels]


class LogisticClassifier(Classifier):
    """Multinomial logistic regression, fixed-iteration full-batch GD.

    Weights initialise from the classifier's seeded
    :class:`~repro.simkernel.randomstream.CounterStream` (so the seed
    genuinely enters the model), then take ``EPOCHS`` deterministic
    gradient steps.  All reductions run through einsum/np.sum pairwise
    loops — same floats on every run and worker.
    """

    name = "logistic"
    EPOCHS = 60
    LEARNING_RATE = 0.5
    INIT_SCALE = 0.01

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._mean = np.zeros(0)
        self._scale = np.ones(0)
        self._labels = np.zeros(0, dtype=np.int64)
        self._weights = np.zeros((0, 0))
        self._bias = np.zeros(0)

    def fit(self, features, labels) -> "LogisticClassifier":
        matrix = _as_matrix(features)
        label_array = np.asarray(labels, dtype=np.int64)
        self._mean, self._scale = _standardize_stats(matrix)
        scaled = (matrix - self._mean) / self._scale
        self._labels = np.unique(label_array)
        classes = len(self._labels)
        label_index = {int(label): i for i, label in enumerate(self._labels)}
        one_hot = np.zeros((len(label_array), classes))
        for row, label in enumerate(label_array):
            one_hot[row, label_index[int(label)]] = 1.0

        stream = CounterStream(self.seed)
        n_features = scaled.shape[1]
        weights = np.array([
            [
                (2.0 * stream.random() - 1.0) * self.INIT_SCALE
                for _ in range(classes)
            ]
            for _ in range(n_features)
        ])
        bias = np.zeros(classes)
        samples = float(len(label_array))
        for _ in range(self.EPOCHS):
            logits = np.einsum("nf,fc->nc", scaled, weights) + bias
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probabilities = exp / exp.sum(axis=1, keepdims=True)
            error = (probabilities - one_hot) / samples
            gradient_w = np.einsum("nf,nc->fc", scaled, error)
            gradient_b = error.sum(axis=0)
            weights -= self.LEARNING_RATE * gradient_w
            bias -= self.LEARNING_RATE * gradient_b
        self._weights = weights
        self._bias = bias
        return self

    def predict(self, features) -> List[int]:
        scaled = (_as_matrix(features) - self._mean) / self._scale
        logits = np.einsum("nf,fc->nc", scaled, self._weights) + self._bias
        # argmax takes the first maximum; labels are sorted.
        return [int(self._labels[i]) for i in logits.argmax(axis=1)]

    def _parameter_arrays(self) -> List[np.ndarray]:
        return [
            self._labels, self._mean, self._scale,
            self._weights, self._bias,
        ]


#: name -> factory(seed); insertion order is presentation order.
CLASSIFIER_REGISTRY: Dict[str, Callable[[int], Classifier]] = {}


def register_classifier(
    name: str,
) -> Callable[[Callable[[int], Classifier]], Callable[[int], Classifier]]:
    """Class/factory decorator adding a classifier to the registry."""

    def wrap(factory: Callable[[int], Classifier]):
        if name in CLASSIFIER_REGISTRY:
            raise ValueError(f"classifier {name!r} already registered")
        CLASSIFIER_REGISTRY[name] = factory
        return factory

    return wrap


register_classifier("exact")(ExactMatchClassifier)
register_classifier("centroid")(NearestCentroidClassifier)
register_classifier("knn")(KNNClassifier)
register_classifier("logistic")(LogisticClassifier)


def classifier_names() -> Tuple[str, ...]:
    """Registered names, registry (presentation) order."""
    return tuple(CLASSIFIER_REGISTRY)


def resolve_classifier(name: str, seed: int = 0) -> Classifier:
    """Instantiate a registered classifier.

    Raises:
        ValueError: naming an unregistered classifier.
    """
    try:
        factory = CLASSIFIER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown classifier {name!r}; registered: "
            f"{', '.join(CLASSIFIER_REGISTRY)}"
        ) from None
    return factory(seed)
