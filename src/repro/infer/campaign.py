"""Frontier-at-scale: the inference study on the campaign executor.

``repro infer`` evaluates the accuracy/overhead frontier over many
zipf page-population sessions using the same shard → worker → session
machinery as :mod:`repro.campaign.engine`: picklable shard tasks on
:class:`~repro.experiments.executor.TrialExecutor`, integer summary
folds that merge exactly at any split, config-digest-sealed shard
checkpoints, and deterministic same-seed retries — so a SIGKILLed run
resumes to a bit-identical frontier (the ``infer-smoke`` CI job pins
that end to end).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.executor import (
    FaultTolerance,
    TrialError,
    TrialExecutor,
    heartbeat,
)
from repro.infer.classifiers import classifier_names
from repro.infer.dataset import StudyDesign, evaluate_session
from repro.infer.defenses import defense_level, defense_level_names
from repro.infer.summary import FORMAT, InferSummary

#: Matches the campaign engine's deterministic retry backoff
#: (``REPRO_BACKOFF`` overrides; tests/CI set 0).
DEFAULT_BACKOFF_BASE = 0.05


@dataclass(frozen=True)
class InferCampaignConfig:
    """Parameters of one at-scale frontier run.

    Attributes:
        sessions: page-population sessions evaluated.
        shard_size: sessions per shard (the checkpoint/retry unit).
        seed: master seed of the study design.
        reps: attacker training fetches per object.
        max_objects: classes per page.
        levels / classifiers: the swept axes (names).
    """

    sessions: int = 2_000
    shard_size: int = 250
    seed: int = 2020
    reps: int = 2
    max_objects: int = 6
    levels: tuple = defense_level_names()
    classifiers: tuple = classifier_names()

    def __post_init__(self) -> None:
        if self.sessions < 1 or self.shard_size < 1:
            raise ValueError("sessions and shard_size must be positive")
        for name in self.levels:
            defense_level(name)

    @property
    def shard_count(self) -> int:
        return -(-self.sessions // self.shard_size)

    def shard_range(self, shard: int) -> range:
        start = shard * self.shard_size
        return range(start, min(start + self.shard_size, self.sessions))

    def design(self) -> StudyDesign:
        return StudyDesign(
            seed=self.seed,
            reps=self.reps,
            max_objects=self.max_objects,
            levels=tuple(self.levels),
            classifiers=tuple(self.classifiers),
        )

    def digest(self) -> str:
        """Short config identity (seals checkpoints, like the campaign)."""
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class InferShardTask:
    """Picklable worker task: fold one shard's sessions to summary JSON."""

    config: InferCampaignConfig

    def __call__(self, shard: int) -> Dict[str, Any]:
        design = self.config.design()
        summary = InferSummary(design.levels, design.classifiers)
        heartbeat()
        for session in self.config.shard_range(shard):
            summary.fold(evaluate_session(session, design))
            heartbeat()
        return summary.to_json()


class InferCampaignError(RuntimeError):
    """A shard exhausted its retries; the frontier would be wrong."""

    def __init__(self, errors: List[TrialError]) -> None:
        shards = ", ".join(str(error.trial) for error in errors)
        super().__init__(
            f"{len(errors)} infer shard(s) failed after retries: {shards}"
        )
        self.errors = errors


@dataclass
class InferCampaignResult:
    """Merged frontier plus run metadata."""

    config: InferCampaignConfig
    summary: InferSummary
    shards: int
    workers: int
    resumed_shards: int = 0
    errors: List[TrialError] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        # Worker count and resume history are deliberately excluded:
        # the JSON must be bit-identical however the run was executed.
        return {
            "format": FORMAT,
            "config_digest": self.config.digest(),
            "sessions": self.config.sessions,
            "shards": self.shards,
            "summary": self.summary.to_json(),
            "summary_digest": self.summary.digest(),
        }

    def render(self) -> str:
        from repro.experiments.infer_study import InferStudyResult

        table = InferStudyResult(
            design=self.config.design(), summary=self.summary
        ).render()
        # Resume/worker history stays off stdout (stderr in the CLI):
        # the rendered frontier must diff clean across kill/resume.
        return (
            table
            + f"\nshards={self.shards} digest={self.summary.digest()[:12]}"
        )


def checkpoint_path(config: InferCampaignConfig, checkpoint_dir: str) -> str:
    """The run's shard-checkpoint file (config-digest-derived name)."""
    return os.path.join(checkpoint_dir, f"infer-{config.digest()}.json")


def run_infer_campaign(
    config: InferCampaignConfig,
    workers: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    retries: int = 1,
) -> InferCampaignResult:
    """Run (or resume) the frontier at scale and merge its shards.

    Raises:
        InferCampaignError: when a shard exhausted its retries.
    """
    executor = TrialExecutor(workers=workers)
    task = InferShardTask(config)
    fault_tolerance = None
    resumed = 0
    if checkpoint_dir:
        os.makedirs(checkpoint_dir, exist_ok=True)
        path = checkpoint_path(config, checkpoint_dir)
        if os.path.exists(path):
            from repro.experiments.executor import Checkpoint

            resumed = len(Checkpoint(path, config_digest=config.digest()))
        fault_tolerance = FaultTolerance(
            retries=retries,
            checkpoint_path=path,
            checkpoint_every=1,
            checkpoint_digest=config.digest(),
            backoff_base=DEFAULT_BACKOFF_BASE,
            backoff_seed=config.digest(),
        )
    outcomes = executor.map_trials(
        config.shard_count, task, fault_tolerance=fault_tolerance
    )
    errors = [item for item in outcomes if isinstance(item, TrialError)]
    if errors:
        raise InferCampaignError(errors)
    design = config.design()
    summary = InferSummary(design.levels, design.classifiers)
    # map_trials returns in shard order: the left fold below is the
    # canonical merge order at any worker count.
    for payload in outcomes:
        summary.merge(InferSummary.from_json(payload))
    return InferCampaignResult(
        config=config,
        summary=summary,
        shards=config.shard_count,
        workers=executor.workers,
        resumed_shards=resumed,
    )
