"""The defense axis: padding, chaff and pipelining, with exact costs.

Three server/middlebox-path defenses the paper discusses but never
measures:

* **per-record padding** — every application record's plaintext is
  padded up to a block boundary (:func:`repro.tls.record.padded_length`,
  the same primitive the live :class:`~repro.tls.session.TLSSession`
  uses), hiding exact sizes at a byte cost;
* **chaff records** — dummy application-data records the receiver's TLS
  layer discards, diluting record counts and totals;
* **response pipelining** — one response at a time, killing the
  multiplexing signal at a latency cost.

A :class:`DefenseConfig` names one point on the axis;
:data:`DEFENSE_LEVELS` is the swept ladder, ordered so the byte
overhead is monotonically non-decreasing by construction (each level
dominates the previous per record).  :class:`DefenseOverhead` keeps the
accounting in plain integers so frontier tables are bit-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.tls.record import MAX_PLAINTEXT_FRAGMENT, padded_length


@dataclass(frozen=True)
class DefenseConfig:
    """One point on the defense axis.

    Attributes:
        name: the level's display name.
        pad_block: plaintext block size records are padded up to
            (0 = off).  Must divide the TLS plaintext ceiling so a
            maximal fragment stays representable.
        chaff_records: dummy records emitted per response.
        chaff_plaintext: plaintext bytes per chaff record (before
            padding — chaff is padded like everything else).
        pipeline: serialize responses (no concurrent emission).
    """

    name: str
    pad_block: int = 0
    chaff_records: int = 0
    chaff_plaintext: int = 1024
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.pad_block < 0:
            raise ValueError("pad_block must be non-negative")
        if self.pad_block > 1 and MAX_PLAINTEXT_FRAGMENT % self.pad_block:
            raise ValueError(
                f"pad_block {self.pad_block} must divide "
                f"{MAX_PLAINTEXT_FRAGMENT}"
            )
        if self.chaff_records < 0:
            raise ValueError("chaff_records must be non-negative")
        if self.chaff_plaintext < 1:
            raise ValueError("chaff_plaintext must be positive")

    def pad(self, plaintext_length: int) -> int:
        """Plaintext length after this level's padding."""
        return padded_length(plaintext_length, self.pad_block)

    @property
    def chaff_record_plaintext(self) -> int:
        """Plaintext of one emitted chaff record (padded)."""
        return self.pad(self.chaff_plaintext)

    @property
    def active(self) -> bool:
        return bool(self.pad_block > 1 or self.chaff_records or self.pipeline)


#: The swept ladder, weakest to strongest.  Order matters: each level's
#: per-record cost dominates the previous one's (block sizes divide the
#: next, chaff only ever grows), so reported byte overheads are
#: monotonically non-decreasing — an invariant the test suite asserts.
DEFENSE_LEVELS: Tuple[DefenseConfig, ...] = (
    DefenseConfig(name="off"),
    DefenseConfig(name="pad256", pad_block=256),
    DefenseConfig(name="pad1k", pad_block=1024),
    DefenseConfig(name="pad1k+chaff", pad_block=1024, chaff_records=4),
    DefenseConfig(
        name="pad4k+chaff+pipe",
        pad_block=4096,
        chaff_records=4,
        pipeline=True,
    ),
)

_LEVELS_BY_NAME: Dict[str, DefenseConfig] = {
    level.name: level for level in DEFENSE_LEVELS
}


def defense_level_names() -> Tuple[str, ...]:
    """Level names, ladder order."""
    return tuple(level.name for level in DEFENSE_LEVELS)


def defense_level(name: str) -> DefenseConfig:
    """Look a ladder level up by name.

    Raises:
        ValueError: naming an unknown level.
    """
    try:
        return _LEVELS_BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown defense level {name!r}; known: "
            f"{', '.join(_LEVELS_BY_NAME)}"
        ) from None


@dataclass
class DefenseOverhead:
    """Integer byte/latency cost accounting of one defended load.

    Attributes:
        base_bytes: wire bytes of the *undefended* responses.
        defended_bytes: wire bytes of the padded responses (no chaff).
        chaff_bytes: wire bytes of emitted chaff records.
        latency_us: added serialization/chaff latency, microseconds.
    """

    base_bytes: int = 0
    defended_bytes: int = 0
    chaff_bytes: int = 0
    latency_us: int = 0

    def add(self, other: "DefenseOverhead") -> None:
        self.base_bytes += other.base_bytes
        self.defended_bytes += other.defended_bytes
        self.chaff_bytes += other.chaff_bytes
        self.latency_us += other.latency_us

    @property
    def extra_bytes(self) -> int:
        return self.defended_bytes + self.chaff_bytes - self.base_bytes

    @property
    def byte_overhead_permille(self) -> int:
        """Integer permille of extra bytes over the undefended load."""
        if self.base_bytes <= 0:
            return 0
        return self.extra_bytes * 1000 // self.base_bytes

    def to_json(self) -> Dict[str, int]:
        return {
            "base_bytes": self.base_bytes,
            "defended_bytes": self.defended_bytes,
            "chaff_bytes": self.chaff_bytes,
            "latency_us": self.latency_us,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, int]) -> "DefenseOverhead":
        return cls(
            base_bytes=int(payload["base_bytes"]),
            defended_bytes=int(payload["defended_bytes"]),
            chaff_bytes=int(payload["chaff_bytes"]),
            latency_us=int(payload["latency_us"]),
        )
