"""Streaming integer aggregation of per-session frontier results.

The infer analogue of :class:`repro.campaign.columnar.ColumnarSummary`
(which stays untouched — its column set is part of recorded digests):
integer counters per defense level plus per-(level, classifier) correct
counts.  Addition of integers is exactly associative, so folds and
merges commute with any shard/worker split — the digest of the merged
summary is a function of the config alone.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Tuple

from repro.infer.defenses import DefenseOverhead

FORMAT = "repro.infer.frontier/v1"


class InferSummary:
    """Fold/merge accumulator over ``evaluate_session`` results."""

    def __init__(
        self, levels: Tuple[str, ...], classifiers: Tuple[str, ...]
    ) -> None:
        self.levels = tuple(levels)
        self.classifiers = tuple(classifiers)
        self.sessions = 0
        self.objects = 0
        self.overheads: Dict[str, DefenseOverhead] = {
            name: DefenseOverhead() for name in self.levels
        }
        self.correct: Dict[str, Dict[str, int]] = {
            name: {clf: 0 for clf in self.classifiers}
            for name in self.levels
        }

    def fold(self, session_result: Dict[str, object]) -> None:
        """Accumulate one ``evaluate_session`` dict."""
        self.sessions += 1
        self.objects += int(session_result["objects"])
        levels = session_result["levels"]
        for name in self.levels:
            entry = levels[name]
            self.overheads[name].add(DefenseOverhead.from_json(entry))
            for clf in self.classifiers:
                self.correct[name][clf] += int(entry["classifiers"][clf])

    def fold_all(self, session_results: Iterable[Dict[str, object]]) -> None:
        for result in session_results:
            self.fold(result)

    def merge(self, other: "InferSummary") -> None:
        """Merge another shard's summary (same axes required)."""
        if (self.levels, self.classifiers) != (other.levels, other.classifiers):
            raise ValueError("cannot merge summaries over different axes")
        self.sessions += other.sessions
        self.objects += other.objects
        for name in self.levels:
            self.overheads[name].add(other.overheads[name])
            for clf in self.classifiers:
                self.correct[name][clf] += other.correct[name][clf]

    # -- accessors --------------------------------------------------------

    def accuracy_permille(self, level: str, classifier: str) -> int:
        """Integer permille accuracy of one frontier cell."""
        if self.objects <= 0:
            return 0
        return self.correct[level][classifier] * 1000 // self.objects

    def byte_overhead_permille(self, level: str) -> int:
        return self.overheads[level].byte_overhead_permille

    def mean_latency_us(self, level: str) -> int:
        """Integer mean added latency per session, microseconds."""
        if self.sessions <= 0:
            return 0
        return self.overheads[level].latency_us // self.sessions

    # -- serialization ----------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "sessions": self.sessions,
            "objects": self.objects,
            "classifiers": list(self.classifiers),
            "levels": [
                {
                    "name": name,
                    **self.overheads[name].to_json(),
                    "correct": {
                        clf: self.correct[name][clf]
                        for clf in self.classifiers
                    },
                }
                for name in self.levels
            ],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "InferSummary":
        if payload.get("format") != FORMAT:
            raise ValueError(
                f"not an infer frontier payload: {payload.get('format')!r}"
            )
        levels = tuple(entry["name"] for entry in payload["levels"])
        classifiers = tuple(payload["classifiers"])
        summary = cls(levels, classifiers)
        summary.sessions = int(payload["sessions"])
        summary.objects = int(payload["objects"])
        for entry in payload["levels"]:
            name = entry["name"]
            summary.overheads[name] = DefenseOverhead.from_json(entry)
            summary.correct[name] = {
                clf: int(entry["correct"][clf]) for clf in classifiers
            }
        return summary

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the bit-identity witness."""
        canonical = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
