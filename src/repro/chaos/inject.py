"""Fault injectors: the primitives the chaos scenarios are built from.

Each injector perturbs exactly one seam of the execution layer —
checkpoint writes (injected ``OSError``), checkpoint files on disk
(byte corruption, byte truncation) — and is deterministic given its
arguments, so a chaos run replays identically.  Process-level faults
(SIGKILL, stalls) live in :mod:`repro.chaos.scenarios` because they
must travel into spawned workers as part of the shard task.
"""

from __future__ import annotations

import contextlib
import errno
import os
from typing import Dict, Iterator

from repro.experiments.executor import set_flush_fault_hook


@contextlib.contextmanager
def failing_checkpoint_writes(
    failures: int = 1, error_code: int = errno.ENOSPC
) -> Iterator[Dict[str, int]]:
    """Make the next ``failures`` checkpoint flushes raise ``OSError``.

    Installs the executor's flush fault hook for the duration of the
    block (process-local — meaningful for serial supervised runs, where
    the checkpoint writer lives in this process).  The default error is
    ``ENOSPC``: the disk-full case a long campaign is most likely to
    hit mid-run.  Yields a state dict whose ``raised`` count says how
    many faults actually fired.
    """
    if failures < 1:
        raise ValueError("failures must be >= 1")
    state = {"remaining": failures, "raised": 0}

    def hook() -> None:
        if state["remaining"] > 0:
            state["remaining"] -= 1
            state["raised"] += 1
            raise OSError(error_code, os.strerror(error_code))

    set_flush_fault_hook(hook)
    try:
        yield state
    finally:
        set_flush_fault_hook(None)


def corrupt_byte(path: str, seed: int = 0) -> int:
    """Flip one byte of ``path`` in place at a seeded offset.

    The offset lands in the middle third of the file, so it hits the
    checkpoint's payload rather than only the leading/trailing braces.
    Any single-byte flip must trip the integrity seal: either the JSON
    no longer parses, or the payload no longer matches its embedded
    SHA-256.  Returns the flipped offset.
    """
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    if not blob:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    third = max(1, len(blob) // 3)
    offset = third + seed % third
    blob[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    return offset


def truncate_bytes(path: str, fraction: float = 0.6) -> int:
    """Cut ``path`` to a fraction of its bytes (a torn, non-atomic write).

    Unlike :meth:`~repro.experiments.executor.Checkpoint.truncate`
    (which drops whole results and re-seals), this leaves invalid JSON
    behind — the shape a genuinely interrupted ``write()`` would have
    produced without the temp-file/rename protocol.  Returns the new
    byte length.
    """
    if not 0 <= fraction < 1:
        raise ValueError("fraction must be in [0, 1)")
    size = os.path.getsize(path)
    kept = int(size * fraction)
    with open(path, "r+b") as handle:
        handle.truncate(kept)
    return kept
