"""Chaos harness: prove the campaign supervisor's recovery contract.

A reproduction whose numbers are only right when nothing goes wrong is
fragile in exactly the way long campaigns are not allowed to be.  This
package injects real faults into the execution layer — killed workers,
corrupted and torn checkpoints, checkpoint writers hitting ``ENOSPC``,
stalled shards, expired deadlines — and asserts that every scenario
ends in one of the two sanctioned outcomes: a bit-identical recovered
digest, or a well-formed partial result with a validating failure
manifest.

Run it from the CLI (``python -m repro chaos [--quick] [--scenario
NAME]``); ``repro verify`` includes the quick subset in its matrix.
"""

from repro.chaos.inject import (
    corrupt_byte,
    failing_checkpoint_writes,
    truncate_bytes,
)
from repro.chaos.scenarios import (
    QUICK_SCENARIOS,
    SCENARIOS,
    ChaosShardTask,
    ScenarioResult,
    render_results,
    run_scenario,
    run_scenarios,
    verify_section,
)

__all__ = [
    "ChaosShardTask",
    "QUICK_SCENARIOS",
    "SCENARIOS",
    "ScenarioResult",
    "corrupt_byte",
    "failing_checkpoint_writes",
    "render_results",
    "run_scenario",
    "run_scenarios",
    "truncate_bytes",
    "verify_section",
]
