"""Chaos scenarios: inject a fault, demand a bit-identical recovery.

Every scenario runs a small analytic campaign twice over in spirit:
once undisturbed (the *reference* digest) and once under an injected
fault — a SIGKILLed worker, a corrupted or torn checkpoint, a disk
that refuses checkpoint writes, a stalled shard, an expired deadline.
The pass condition is the supervisor contract from the campaign
engine:

* **recovered** — the faulted run terminates normally and its merged
  summary digest equals the reference digest bit for bit; or
* **partial** — the faulted run returns a degraded
  :class:`~repro.campaign.engine.CampaignResult` *plus* a failure
  manifest that validates against
  :data:`~repro.campaign.supervisor.MANIFEST_SCHEMA` with consistent
  coverage accounting.

Anything else — an unhandled traceback, a silently wrong digest, a
malformed manifest — fails the scenario.  ``repro chaos`` runs these
from the CLI and ``repro verify`` wires the quick subset into its
check matrix, so the recovery path is regression-tested alongside the
numbers it protects.

All fault points are seeded (victim shards from the config digest,
corruption offsets from an explicit seed), so a chaos run replays
identically — flaky chaos tests would be worse than none.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.engine import (
    CampaignConfig,
    CampaignResult,
    ShardTask,
    checkpoint_path,
    run_campaign,
)
from repro.campaign.supervisor import validate_manifest
from repro.chaos.inject import (
    corrupt_byte,
    failing_checkpoint_writes,
    truncate_bytes,
)
from repro.experiments.report import format_table
from repro.fastpath import resolve_backend

#: Recognised scenario outcome modes.
MODES = ("recovered", "partial")


@dataclass(frozen=True)
class ChaosShardTask:
    """Picklable shard task that fires a fault once, then runs for real.

    Delegates to the genuine :class:`ShardTask` — the computed summary
    is bit-identical to an unfaulted run by construction; only the
    *execution* is sabotaged.  A marker file per victim shard makes
    every fault one-shot: the supervised retry of the same shard runs
    clean, which is exactly the recovery path under test.

    Faults:

    * ``kill`` — SIGKILL this worker process.  Even victim shards die
      on entry (no work done); odd victims compute the full shard first
      and die before reporting (completed work lost in flight) — the
      two interesting points in a worker's life.
    * ``stall`` — stop emitting progress heartbeats by sleeping; the
      supervisor's heartbeat watchdog must notice and kill us.
    """

    config: CampaignConfig
    backend: str
    fault: str
    victims: Tuple[int, ...]
    marker_dir: str
    stall_seconds: float = 30.0

    def __call__(self, shard: int) -> Dict[str, Any]:
        real = ShardTask(self.config, backend=self.backend)
        if shard not in self.victims:
            return real(shard)
        marker = os.path.join(self.marker_dir, f"fault-{shard}")
        if os.path.exists(marker):
            return real(shard)  # retry attempt: run clean
        with open(marker, "w"):
            pass
        if self.fault == "kill":
            if shard % 2 == 0:
                os.kill(os.getpid(), signal.SIGKILL)
            result = real(shard)  # work done, then lost in flight
            del result
            os.kill(os.getpid(), signal.SIGKILL)
        if self.fault == "stall":
            time.sleep(self.stall_seconds)
        return real(shard)


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one chaos scenario."""

    name: str
    passed: bool
    mode: str
    detail: str
    duration_s: float

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


def _pick_victims(config: CampaignConfig, count: int, salt: str) -> Tuple[int, ...]:
    """Seeded victim shards — pseudo-random but replayable."""
    token = hashlib.sha256(
        f"{config.digest()}|{salt}".encode("utf-8")
    ).digest()
    victims: List[int] = []
    for offset in range(0, len(token) - 4, 4):
        shard = int.from_bytes(token[offset:offset + 4], "big")
        shard %= config.shard_count
        if shard not in victims:
            victims.append(shard)
        if len(victims) == count:
            break
    return tuple(sorted(victims))


def _reference_digest(config: CampaignConfig, backend: str) -> str:
    """Digest of the undisturbed run — the recovery target."""
    return run_campaign(config, workers=1, backend=backend).digest()


def _load_manifest(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_manifest(payload)
    return payload


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


# ---------------------------------------------------------------------------
# Scenario bodies.  Each takes (workdir, backend) and returns a detail
# string on success; assertion failures / exceptions fail the scenario.
# ---------------------------------------------------------------------------


def _scenario_worker_kill(workdir: str, backend: str) -> Tuple[str, str]:
    config = CampaignConfig(sessions=1600, shard_size=200, seed=11)
    reference = _reference_digest(config, backend)
    victims = _pick_victims(config, 2, "worker-kill")
    task = ChaosShardTask(
        config=config, backend=backend, fault="kill",
        victims=victims, marker_dir=workdir,
    )
    result = run_campaign(
        config, workers=2, checkpoint_dir=workdir, retries=2,
        backend=backend, shard_task=task,
    )
    for shard in victims:
        _require(
            os.path.exists(os.path.join(workdir, f"fault-{shard}")),
            f"kill fault for shard {shard} never fired",
        )
    _require(not result.partial, "recovered run must have full coverage")
    _require(
        result.digest() == reference,
        f"digest drifted after worker kills: {result.digest()} != {reference}",
    )
    return "recovered", (
        f"SIGKILLed workers on shards {list(victims)}; retries recovered "
        f"digest {reference[:12]}"
    )


def _scenario_checkpoint_corrupt(workdir: str, backend: str) -> Tuple[str, str]:
    config = CampaignConfig(sessions=1200, shard_size=200, seed=13)
    reference = _reference_digest(config, backend)
    first = run_campaign(
        config, workers=1, checkpoint_dir=workdir, backend=backend
    )
    _require(first.digest() == reference, "baseline checkpointed run drifted")
    path = checkpoint_path(config, workdir)
    offset = corrupt_byte(path, seed=config.seed)
    result = run_campaign(
        config, workers=1, checkpoint_dir=workdir, backend=backend,
        failure_manifest=os.path.join(workdir, "manifest.json"),
    )
    sidecar = path + ".corrupt"
    _require(os.path.exists(sidecar), "corrupted checkpoint not quarantined")
    _require(result.quarantined == [sidecar], "quarantine not reported")
    _require(result.resumed_shards == 0, "resumed from a corrupt checkpoint")
    _require(
        result.digest() == reference,
        f"digest drifted after corruption: {result.digest()} != {reference}",
    )
    manifest = _load_manifest(os.path.join(workdir, "manifest.json"))
    _require(
        manifest["quarantined_checkpoints"] == [sidecar],
        "manifest missing quarantine record",
    )
    return "recovered", (
        f"byte {offset} flipped → quarantined to .corrupt, recomputed "
        f"digest {reference[:12]}"
    )


def _scenario_checkpoint_truncate(workdir: str, backend: str) -> Tuple[str, str]:
    config = CampaignConfig(sessions=1200, shard_size=200, seed=17)
    reference = _reference_digest(config, backend)
    run_campaign(config, workers=1, checkpoint_dir=workdir, backend=backend)
    path = checkpoint_path(config, workdir)
    kept = truncate_bytes(path, fraction=0.6)
    result = run_campaign(
        config, workers=1, checkpoint_dir=workdir, backend=backend
    )
    sidecar = path + ".corrupt"
    _require(os.path.exists(sidecar), "torn checkpoint not quarantined")
    _require(result.quarantined == [sidecar], "quarantine not reported")
    _require(
        result.digest() == reference,
        f"digest drifted after torn write: {result.digest()} != {reference}",
    )
    return "recovered", (
        f"checkpoint torn to {kept} bytes → quarantined, recomputed "
        f"digest {reference[:12]}"
    )


def _scenario_checkpoint_enospc(workdir: str, backend: str) -> Tuple[str, str]:
    config = CampaignConfig(sessions=1200, shard_size=200, seed=19)
    reference = _reference_digest(config, backend)
    manifest_path = os.path.join(workdir, "manifest.json")
    with failing_checkpoint_writes(failures=3) as faults:
        result = run_campaign(
            config, workers=1, checkpoint_dir=workdir, backend=backend,
            failure_manifest=manifest_path,
        )
    _require(faults["raised"] >= 1, "ENOSPC fault never fired")
    _require(not result.partial, "write failure must not degrade coverage")
    _require(
        result.digest() == reference,
        f"digest drifted under ENOSPC: {result.digest()} != {reference}",
    )
    manifest = _load_manifest(manifest_path)
    _require(
        bool(manifest["checkpoint_write_error"]),
        "manifest missing checkpoint_write_error",
    )
    _require(manifest["status"] == "complete", "run should still be complete")
    return "recovered", (
        "checkpoint writes hit ENOSPC → checkpointing disabled gracefully, "
        f"digest {reference[:12]} intact, write error in manifest"
    )


def _scenario_stalled_shard(workdir: str, backend: str) -> Tuple[str, str]:
    config = CampaignConfig(sessions=800, shard_size=200, seed=23)
    reference = _reference_digest(config, backend)
    victims = _pick_victims(config, 1, "stalled-shard")
    task = ChaosShardTask(
        config=config, backend=backend, fault="stall",
        victims=victims, marker_dir=workdir, stall_seconds=30.0,
    )
    started = time.monotonic()
    result = run_campaign(
        config, workers=2, checkpoint_dir=workdir, retries=1,
        backend=backend, heartbeat_timeout=1.0, shard_task=task,
    )
    elapsed = time.monotonic() - started
    _require(
        elapsed < 20.0,
        f"watchdog too slow: {elapsed:.1f}s (stall is 30s)",
    )
    _require(not result.partial, "recovered run must have full coverage")
    _require(
        result.digest() == reference,
        f"digest drifted after stall: {result.digest()} != {reference}",
    )
    return "recovered", (
        f"shard {victims[0]} went silent; heartbeat watchdog killed and "
        f"retried it in {elapsed:.1f}s, digest {reference[:12]}"
    )


def _scenario_deadline_expiry(workdir: str, backend: str) -> Tuple[str, str]:
    config = CampaignConfig(sessions=2000, shard_size=200, seed=29)
    manifest_path = os.path.join(workdir, "manifest.json")
    result = run_campaign(
        config, workers=1, backend=backend, deadline=0.0,
        allow_partial=True, failure_manifest=manifest_path,
    )
    _require(result.partial, "expired deadline must yield a partial result")
    _require(
        len(result.skipped_shards) == config.shard_count,
        "all shards should be deadline-skipped",
    )
    _require(result.sessions_covered == 0, "no sessions should be covered")
    _require(
        all(e.kind == "deadline" for e in result.errors),
        "unexpected error kinds under a pure deadline expiry",
    )
    manifest = _load_manifest(manifest_path)
    _require(manifest["status"] == "partial", "manifest status must be partial")
    _require(
        manifest["coverage"]["skipped_shards"] == config.shard_count,
        "manifest coverage disagrees with the result",
    )
    # The partial result's JSON must carry the coverage block.
    payload = result.to_json()
    _require("coverage" in payload, "partial result JSON missing coverage")
    return "partial", (
        f"deadline expired before any shard; {config.shard_count} shards "
        "skipped, valid partial manifest written"
    )


# ---------------------------------------------------------------------------
# Registry and runners
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered chaos scenario."""

    name: str
    description: str
    quick: bool
    body: Callable[[str, str], Tuple[str, str]]


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "worker-kill",
            "SIGKILL workers at seeded points; retries recover the digest",
            quick=False, body=_scenario_worker_kill,
        ),
        ScenarioSpec(
            "checkpoint-corrupt",
            "flip a checkpoint byte; resume quarantines and recomputes",
            quick=True, body=_scenario_checkpoint_corrupt,
        ),
        ScenarioSpec(
            "checkpoint-truncate",
            "tear a checkpoint mid-file; resume quarantines and recomputes",
            quick=True, body=_scenario_checkpoint_truncate,
        ),
        ScenarioSpec(
            "checkpoint-enospc",
            "checkpoint writes raise ENOSPC; run completes, digest intact",
            quick=True, body=_scenario_checkpoint_enospc,
        ),
        ScenarioSpec(
            "stalled-shard",
            "a shard stops heartbeating; the watchdog kills and retries it",
            quick=False, body=_scenario_stalled_shard,
        ),
        ScenarioSpec(
            "deadline-expiry",
            "deadline expires; partial result + valid failure manifest",
            quick=True, body=_scenario_deadline_expiry,
        ),
    )
}

#: Scenarios cheap enough for ``repro verify --quick`` (serial, no
#: process spawns beyond the campaign itself).
QUICK_SCENARIOS = tuple(
    name for name, spec in SCENARIOS.items() if spec.quick
)


def run_scenario(
    name: str,
    workdir: Optional[str] = None,
    backend: Optional[str] = None,
) -> ScenarioResult:
    """Run one scenario; never raises — failures become a FAIL result."""
    spec = SCENARIOS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown chaos scenario {name!r}; "
            f"expected one of {sorted(SCENARIOS)}"
        )
    resolved_backend = resolve_backend(backend)
    started = time.monotonic()

    def finish(passed: bool, mode: str, detail: str) -> ScenarioResult:
        return ScenarioResult(
            name=name, passed=passed, mode=mode, detail=detail,
            duration_s=time.monotonic() - started,
        )

    try:
        if workdir is None:
            with tempfile.TemporaryDirectory(prefix="chaos-") as temp:
                mode, detail = spec.body(temp, resolved_backend)
        else:
            scenario_dir = os.path.join(workdir, name)
            os.makedirs(scenario_dir, exist_ok=True)
            mode, detail = spec.body(scenario_dir, resolved_backend)
    except AssertionError as failure:
        return finish(False, "failed", str(failure))
    except Exception as failure:  # noqa: BLE001 - harness boundary
        last = traceback.format_exc().strip().splitlines()[-1]
        return finish(False, "error", f"unhandled: {last}")
    if mode not in MODES:
        return finish(False, "error", f"scenario returned bad mode {mode!r}")
    return finish(True, mode, detail)


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    workdir: Optional[str] = None,
    backend: Optional[str] = None,
) -> List[ScenarioResult]:
    """Run a set of scenarios (default: all; ``quick``: the CI subset)."""
    if names is None:
        names = QUICK_SCENARIOS if quick else tuple(SCENARIOS)
    return [
        run_scenario(name, workdir=workdir, backend=backend)
        for name in names
    ]


def render_results(results: Sequence[ScenarioResult]) -> str:
    """The ``repro chaos`` stdout table."""
    rows = [
        [
            result.name,
            result.status,
            result.mode,
            f"{result.duration_s:.1f}s",
            result.detail,
        ]
        for result in results
    ]
    good = sum(1 for result in results if result.passed)
    return format_table(
        ["scenario", "status", "mode", "time", "detail"], rows,
        title=(
            f"Chaos harness — fault injection → recovery "
            f"({good}/{len(results)} passed)"
        ),
    )


def verify_section(quick: bool = False):
    """The chaos rows of the ``repro verify`` matrix."""
    from repro.conform.report import Section

    section = Section(
        "Chaos supervision (fault injection → bit-identical recovery)"
    )
    for result in run_scenarios(quick=quick):
        section.add(
            f"chaos:{result.name}",
            result.passed,
            detail=result.detail,
            duration=result.duration_s,
        )
    return section
