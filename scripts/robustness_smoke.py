#!/usr/bin/env python
"""CI smoke test for the fault-tolerant robustness study.

Three phases, stdlib only:

A. A clean ``repro robustness-study --quick`` reference run.
B. The same run with a checkpoint, during which one spawn *worker*
   process is SIGKILLed mid-trial — the supervised executor must retry
   the lost trial with the same seed and finish with output identical
   to the reference.
C. The same run again, during which the *whole study* is SIGKILLed once
   the checkpoint holds completed trials — the resumed run must skip
   them and still produce output identical to the reference.

Exit code 0 only if every phase's JSON equals the reference.  The final
study JSON is left at ``--out`` for upload as a CI artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _study_command(json_out, checkpoint=None, workers=2):
    command = [
        sys.executable, "-m", "repro", "robustness-study",
        "--quick", "--seed", "7", "--workers", str(workers),
        "--json", json_out,
    ]
    if checkpoint:
        command += ["--checkpoint", checkpoint]
    return command


def _run(command, timeout):
    completed = subprocess.run(
        command, cwd=REPO_ROOT, env=_env(), timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    print(completed.stdout)
    if completed.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(command)} exited {completed.returncode}"
        )


def _children(pid):
    """Direct children of ``pid`` (Linux /proc)."""
    try:
        with open(f"/proc/{pid}/task/{pid}/children") as handle:
            return [int(child) for child in handle.read().split()]
    except OSError:
        return []


def _cmdline(pid):
    try:
        with open(f"/proc/{pid}/cmdline", "rb") as handle:
            return handle.read().replace(b"\0", b" ").decode(
                "utf-8", "replace"
            )
    except OSError:
        return ""


def _find_spawn_worker(pid):
    """A spawn-context worker child of ``pid`` (not the resource tracker)."""
    for child in _children(pid):
        cmdline = _cmdline(child)
        if "spawn_main" in cmdline and "resource_tracker" not in cmdline:
            return child
    return None


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def phase_a(workdir, timeout):
    print("== Phase A: reference run ==", flush=True)
    reference_path = os.path.join(workdir, "reference.json")
    _run(_study_command(reference_path), timeout)
    return _load(reference_path)


def phase_b(workdir, reference, timeout):
    print("== Phase B: kill one worker mid-run ==", flush=True)
    out_path = os.path.join(workdir, "killed_worker.json")
    checkpoint = os.path.join(workdir, "checkpoint_b.json")
    process = subprocess.Popen(
        _study_command(out_path, checkpoint=checkpoint),
        cwd=REPO_ROOT, env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    killed = None
    deadline = time.monotonic() + timeout
    while process.poll() is None and time.monotonic() < deadline:
        if killed is None:
            worker = _find_spawn_worker(process.pid)
            if worker is not None:
                # Give the worker a moment to be genuinely mid-trial.
                time.sleep(1.0)
                try:
                    os.kill(worker, signal.SIGKILL)
                    killed = worker
                    print(f"killed worker pid {worker}", flush=True)
                except ProcessLookupError:
                    pass  # finished first; catch the next one
        time.sleep(0.1)
    try:
        stdout, _ = process.communicate(timeout=max(1.0, deadline - time.monotonic()))
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("FAIL: phase B run timed out")
    print(stdout)
    if killed is None:
        raise SystemExit("FAIL: never found a spawn worker to kill")
    if process.returncode != 0:
        raise SystemExit(f"FAIL: phase B run exited {process.returncode}")
    result = _load(out_path)
    if result != reference:
        raise SystemExit(
            "FAIL: output after worker kill differs from reference"
        )
    print("phase B OK: worker kill retried, output identical", flush=True)


def phase_c(workdir, reference, timeout):
    print("== Phase C: kill the whole run, then resume ==", flush=True)
    out_path = os.path.join(workdir, "resumed.json")
    checkpoint = os.path.join(workdir, "checkpoint_c.json")
    process = subprocess.Popen(
        _study_command(out_path, checkpoint=checkpoint),
        cwd=REPO_ROOT, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )
    completed_before_kill = 0
    deadline = time.monotonic() + timeout
    while process.poll() is None and time.monotonic() < deadline:
        if os.path.exists(checkpoint):
            try:
                completed_before_kill = len(
                    _load(checkpoint).get("results", {})
                )
            except (ValueError, OSError):
                completed_before_kill = 0  # mid-replace; retry
            if completed_before_kill >= 2:
                process.send_signal(signal.SIGKILL)
                break
        time.sleep(0.1)
    process.wait(timeout=30)
    if completed_before_kill < 2:
        raise SystemExit(
            "FAIL: run finished before the checkpoint had 2 trials to "
            "interrupt (nothing was tested)"
        )
    print(
        f"killed study with {completed_before_kill} trials checkpointed",
        flush=True,
    )
    # Resume: completed trials must not be lost, output must match.
    _run(_study_command(out_path, checkpoint=checkpoint), timeout)
    resumed_checkpoint = len(_load(checkpoint).get("results", {}))
    if resumed_checkpoint < completed_before_kill:
        raise SystemExit("FAIL: resume lost checkpointed trials")
    result = _load(out_path)
    if result != reference:
        raise SystemExit("FAIL: resumed output differs from reference")
    print("phase C OK: resume completed, output identical", flush=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default="robustness_smoke",
        help="directory for checkpoints and JSON outputs",
    )
    parser.add_argument(
        "--out", default="robustness_study.json",
        help="where to leave the final study JSON (CI artifact)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-phase wall-clock budget in seconds",
    )
    args = parser.parse_args()

    workdir = os.path.abspath(args.workdir)
    os.makedirs(workdir, exist_ok=True)
    reference = phase_a(workdir, args.timeout)
    phase_b(workdir, reference, args.timeout)
    phase_c(workdir, reference, args.timeout)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(reference, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"robustness smoke passed; study JSON at {args.out}")


if __name__ == "__main__":
    main()
