#!/usr/bin/env python
"""CI smoke test for campaign checkpoint/resume bit-identity.

Two phases, stdlib only:

A. A clean ``repro campaign`` reference run (no checkpoint).
B. The same campaign with ``--checkpoint-dir``, SIGKILLed once the
   shard checkpoint holds at least two completed shards — the re-run
   must resume those shards (not recompute them) and produce JSON
   identical to the uninterrupted reference.

Exit code 0 only if the resumed output equals the reference byte for
byte.  The final campaign JSON is left at ``--out`` for upload as a CI
artifact.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SESSIONS = 30_000
SHARD_SIZE = 1_500
MIN_SHARDS_BEFORE_KILL = 2


def _env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _campaign_command(json_out, checkpoint_dir=None, workers=2):
    command = [
        sys.executable, "-m", "repro", "campaign",
        "--sessions", str(SESSIONS), "--shard-size", str(SHARD_SIZE),
        "--seed", "7", "--workers", str(workers),
        "--json", json_out,
    ]
    if checkpoint_dir:
        command += ["--checkpoint-dir", checkpoint_dir]
    return command


def _run(command, timeout):
    completed = subprocess.run(
        command, cwd=REPO_ROOT, env=_env(), timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    print(completed.stdout)
    print(completed.stderr, file=sys.stderr)
    if completed.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(command)} exited {completed.returncode}"
        )
    return completed


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _checkpoint_shards(checkpoint_dir):
    """Completed shard count in the (single) campaign checkpoint file."""
    paths = glob.glob(os.path.join(checkpoint_dir, "campaign-*.json"))
    if not paths:
        return 0
    try:
        return len(_load(paths[0]).get("results", {}))
    except (ValueError, OSError):
        return 0  # mid-replace; retry next poll


def phase_a(workdir, timeout):
    print("== Phase A: reference run ==", flush=True)
    reference_path = os.path.join(workdir, "reference.json")
    _run(_campaign_command(reference_path), timeout)
    return _load(reference_path)


def phase_b(workdir, reference, timeout):
    print("== Phase B: kill the campaign, then resume ==", flush=True)
    out_path = os.path.join(workdir, "resumed.json")
    checkpoint_dir = os.path.join(workdir, "checkpoints")
    os.makedirs(checkpoint_dir, exist_ok=True)
    process = subprocess.Popen(
        _campaign_command(out_path, checkpoint_dir=checkpoint_dir),
        cwd=REPO_ROOT, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    completed_before_kill = 0
    deadline = time.monotonic() + timeout
    while process.poll() is None and time.monotonic() < deadline:
        completed_before_kill = _checkpoint_shards(checkpoint_dir)
        if completed_before_kill >= MIN_SHARDS_BEFORE_KILL:
            process.send_signal(signal.SIGKILL)
            break
        time.sleep(0.1)
    process.wait(timeout=30)
    if completed_before_kill < MIN_SHARDS_BEFORE_KILL:
        raise SystemExit(
            "FAIL: campaign finished before the checkpoint held "
            f"{MIN_SHARDS_BEFORE_KILL} shards to interrupt (nothing was "
            "tested) — lower SHARD_SIZE or raise SESSIONS"
        )
    print(
        f"killed campaign with {completed_before_kill} shard(s) "
        "checkpointed", flush=True,
    )

    # Resume: checkpointed shards must be reused, output must match.
    completed = _run(
        _campaign_command(out_path, checkpoint_dir=checkpoint_dir), timeout
    )
    resumed_after = _checkpoint_shards(checkpoint_dir)
    if resumed_after < completed_before_kill:
        raise SystemExit("FAIL: resume lost checkpointed shards")
    if "resumed" not in completed.stderr:
        raise SystemExit("FAIL: resume did not report resumed shards")
    result = _load(out_path)
    if result != reference:
        raise SystemExit("FAIL: resumed output differs from reference")
    print(
        "phase B OK: resume reused the checkpoint, output identical",
        flush=True,
    )
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default="campaign_smoke",
        help="directory for checkpoints and JSON outputs",
    )
    parser.add_argument(
        "--out", default="campaign_smoke.json",
        help="where to leave the final campaign JSON (CI artifact)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-phase wall-clock budget in seconds",
    )
    args = parser.parse_args()

    workdir = os.path.abspath(args.workdir)
    os.makedirs(workdir, exist_ok=True)
    reference = phase_a(workdir, args.timeout)
    phase_b(workdir, reference, args.timeout)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(reference, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"campaign smoke passed; campaign JSON at {args.out}")


if __name__ == "__main__":
    main()
