#!/usr/bin/env python
"""CI smoke test for the campaign supervisor's recovery contract.

One end-to-end gauntlet, stdlib only, subprocess-driven like a real
operator session:

A. A clean ``repro campaign`` reference run (no checkpoint).
B. The same campaign with ``--checkpoint-dir``, SIGKILLed once the
   shard checkpoint holds at least two completed shards.
C. The surviving checkpoint is then **byte-corrupted** (one flipped
   byte mid-file) — the worst case on top of the kill.
D. The resume runs with ``--failure-manifest``: it must quarantine the
   corrupt file to a ``.corrupt`` sidecar, recompute cleanly, produce
   JSON identical to the uninterrupted reference, and leave a manifest
   that validates against the failure-manifest schema.

Exit code 0 only if every assertion holds.  The manifest is left at
``--manifest-out`` for upload as a CI artifact.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SESSIONS = 30_000
SHARD_SIZE = 1_500
MIN_SHARDS_BEFORE_KILL = 2


def _env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.setdefault("REPRO_BACKOFF", "0")
    return env


def _campaign_command(json_out, checkpoint_dir=None, manifest=None,
                      workers=2):
    command = [
        sys.executable, "-m", "repro", "campaign",
        "--sessions", str(SESSIONS), "--shard-size", str(SHARD_SIZE),
        "--seed", "7", "--workers", str(workers),
        "--json", json_out,
    ]
    if checkpoint_dir:
        command += ["--checkpoint-dir", checkpoint_dir]
    if manifest:
        command += ["--failure-manifest", manifest]
    return command


def _run(command, timeout):
    completed = subprocess.run(
        command, cwd=REPO_ROOT, env=_env(), timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    print(completed.stdout)
    print(completed.stderr, file=sys.stderr)
    if completed.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(command)} exited {completed.returncode}"
        )
    return completed


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _checkpoint_file(checkpoint_dir):
    paths = glob.glob(os.path.join(checkpoint_dir, "campaign-*.json"))
    return paths[0] if paths else None


def _checkpoint_shards(checkpoint_dir):
    path = _checkpoint_file(checkpoint_dir)
    if path is None:
        return 0
    try:
        return len(_load(path).get("results", {}))
    except (ValueError, OSError):
        return 0  # mid-replace; retry next poll


def phase_reference(workdir, timeout):
    print("== Phase A: reference run ==", flush=True)
    reference_path = os.path.join(workdir, "reference.json")
    _run(_campaign_command(reference_path), timeout)
    return _load(reference_path)


def phase_kill(workdir, timeout):
    print("== Phase B: SIGKILL the campaign mid-run ==", flush=True)
    out_path = os.path.join(workdir, "killed.json")
    checkpoint_dir = os.path.join(workdir, "checkpoints")
    os.makedirs(checkpoint_dir, exist_ok=True)
    process = subprocess.Popen(
        _campaign_command(out_path, checkpoint_dir=checkpoint_dir),
        cwd=REPO_ROOT, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    completed_before_kill = 0
    deadline = time.monotonic() + timeout
    while process.poll() is None and time.monotonic() < deadline:
        completed_before_kill = _checkpoint_shards(checkpoint_dir)
        if completed_before_kill >= MIN_SHARDS_BEFORE_KILL:
            process.send_signal(signal.SIGKILL)
            break
        time.sleep(0.1)
    process.wait(timeout=30)
    if completed_before_kill < MIN_SHARDS_BEFORE_KILL:
        raise SystemExit(
            "FAIL: campaign finished before the checkpoint held "
            f"{MIN_SHARDS_BEFORE_KILL} shards to interrupt (nothing was "
            "tested) — lower SHARD_SIZE or raise SESSIONS"
        )
    print(
        f"killed campaign with {completed_before_kill} shard(s) "
        "checkpointed", flush=True,
    )
    return checkpoint_dir


def phase_corrupt(checkpoint_dir):
    print("== Phase C: corrupt the surviving checkpoint ==", flush=True)
    path = _checkpoint_file(checkpoint_dir)
    if path is None:
        raise SystemExit("FAIL: no checkpoint file survived the kill")
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    offset = len(blob) // 2
    blob[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    print(f"flipped byte {offset} of {os.path.basename(path)}", flush=True)
    return path


def phase_resume(workdir, checkpoint_dir, corrupted_path, reference,
                 manifest_out, timeout):
    print("== Phase D: resume over the corrupted checkpoint ==", flush=True)
    out_path = os.path.join(workdir, "recovered.json")
    completed = _run(
        _campaign_command(out_path, checkpoint_dir=checkpoint_dir,
                          manifest=manifest_out),
        timeout,
    )
    sidecar = corrupted_path + ".corrupt"
    if not os.path.exists(sidecar):
        raise SystemExit(
            "FAIL: corrupted checkpoint was not quarantined to "
            f"{sidecar}"
        )
    if "quarantined checkpoint" not in completed.stderr:
        raise SystemExit("FAIL: quarantine warning missing from stderr")
    result = _load(out_path)
    if result != reference:
        raise SystemExit(
            "FAIL: recovered output differs from the uninterrupted "
            "reference"
        )

    manifest = _load(manifest_out)
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.campaign import validate_manifest

    try:
        validate_manifest(manifest)
    except ValueError as error:
        raise SystemExit(f"FAIL: manifest invalid: {error}") from None
    if manifest["status"] != "complete":
        raise SystemExit(
            f"FAIL: manifest status {manifest['status']!r}, expected "
            "'complete' (the resume recovered fully)"
        )
    if manifest["quarantined_checkpoints"] != [sidecar]:
        raise SystemExit("FAIL: manifest missing the quarantine record")
    print(
        "phase D OK: quarantined, recomputed bit-identically, manifest "
        "valid", flush=True,
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default="chaos_smoke",
        help="directory for checkpoints and JSON outputs",
    )
    parser.add_argument(
        "--manifest-out", default="chaos_smoke_manifest.json",
        help="where to leave the failure manifest (CI artifact)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-phase wall-clock budget in seconds",
    )
    args = parser.parse_args()

    workdir = os.path.abspath(args.workdir)
    manifest_out = os.path.abspath(args.manifest_out)
    os.makedirs(workdir, exist_ok=True)
    reference = phase_reference(workdir, args.timeout)
    checkpoint_dir = phase_kill(workdir, args.timeout)
    corrupted_path = phase_corrupt(checkpoint_dir)
    phase_resume(workdir, checkpoint_dir, corrupted_path, reference,
                 manifest_out, args.timeout)
    print(f"chaos smoke passed; failure manifest at {manifest_out}")


if __name__ == "__main__":
    main()
