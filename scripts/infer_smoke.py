#!/usr/bin/env python
"""CI smoke test for the E19 infer frontier: kill/resume bit-identity.

Three phases, stdlib only:

A. A clean ``repro infer`` reference run (no checkpoint).
B. The same run with ``--checkpoint-dir``, SIGKILLed once the shard
   checkpoint holds at least two completed shards — the re-run must
   resume those shards (not recompute them) and produce JSON identical
   to the uninterrupted reference.
C. Frontier shape checks on the reference: undefended, the best
   statistical classifier beats the exact-match baseline, and the
   defense ladder's byte overhead is monotone.

Exit code 0 only if all three hold.  The frontier JSON is left at
``--out`` for upload as a CI artifact.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SESSIONS = 120
SHARD_SIZE = 10
MIN_SHARDS_BEFORE_KILL = 2


def _env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _infer_command(json_out, checkpoint_dir=None, workers=2):
    command = [
        sys.executable, "-m", "repro", "infer",
        "--sessions", str(SESSIONS), "--shard-size", str(SHARD_SIZE),
        "--seed", "7", "--workers", str(workers),
        "--json", json_out,
    ]
    if checkpoint_dir:
        command += ["--checkpoint-dir", checkpoint_dir]
    return command


def _run(command, timeout):
    completed = subprocess.run(
        command, cwd=REPO_ROOT, env=_env(), timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    print(completed.stdout)
    print(completed.stderr, file=sys.stderr)
    if completed.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(command)} exited {completed.returncode}"
        )
    return completed


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _checkpoint_shards(checkpoint_dir):
    """Completed shard count in the (single) infer checkpoint file."""
    paths = glob.glob(os.path.join(checkpoint_dir, "infer-*.json"))
    if not paths:
        return 0
    try:
        return len(_load(paths[0]).get("results", {}))
    except (ValueError, OSError):
        return 0  # mid-replace; retry next poll


def phase_a(workdir, timeout):
    print("== Phase A: reference run ==", flush=True)
    reference_path = os.path.join(workdir, "reference.json")
    _run(_infer_command(reference_path), timeout)
    return _load(reference_path)


def phase_b(workdir, reference, timeout):
    print("== Phase B: kill the frontier run, then resume ==", flush=True)
    out_path = os.path.join(workdir, "resumed.json")
    checkpoint_dir = os.path.join(workdir, "checkpoints")
    os.makedirs(checkpoint_dir, exist_ok=True)
    process = subprocess.Popen(
        _infer_command(out_path, checkpoint_dir=checkpoint_dir),
        cwd=REPO_ROOT, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    completed_before_kill = 0
    deadline = time.monotonic() + timeout
    while process.poll() is None and time.monotonic() < deadline:
        completed_before_kill = _checkpoint_shards(checkpoint_dir)
        if completed_before_kill >= MIN_SHARDS_BEFORE_KILL:
            process.send_signal(signal.SIGKILL)
            break
        time.sleep(0.1)
    process.wait(timeout=30)
    if completed_before_kill < MIN_SHARDS_BEFORE_KILL:
        raise SystemExit(
            "FAIL: the frontier run finished before the checkpoint held "
            f"{MIN_SHARDS_BEFORE_KILL} shards to interrupt (nothing was "
            "tested) — lower SHARD_SIZE or raise SESSIONS"
        )
    print(
        f"killed frontier run with {completed_before_kill} shard(s) "
        "checkpointed", flush=True,
    )

    completed = _run(
        _infer_command(out_path, checkpoint_dir=checkpoint_dir), timeout
    )
    resumed_after = _checkpoint_shards(checkpoint_dir)
    if resumed_after < completed_before_kill:
        raise SystemExit("FAIL: resume lost checkpointed shards")
    if "resumed" not in completed.stderr:
        raise SystemExit("FAIL: resume did not report resumed shards")
    result = _load(out_path)
    if result != reference:
        raise SystemExit("FAIL: resumed output differs from reference")
    print(
        "phase B OK: resume reused the checkpoint, output identical",
        flush=True,
    )


def phase_c(reference):
    print("== Phase C: frontier shape checks ==", flush=True)
    summary = reference["summary"]
    objects = summary["objects"]
    levels = {level["name"]: level for level in summary["levels"]}
    off = summary["levels"][0]
    exact = off["correct"]["exact"]
    statistical = {
        name: correct for name, correct in off["correct"].items()
        if name != "exact"
    }
    best_name = max(statistical, key=lambda name: (statistical[name], name))
    print(
        f"undefended over {objects} objects: exact {exact}, "
        f"best statistical ({best_name}) {statistical[best_name]}"
    )
    if statistical[best_name] <= exact:
        raise SystemExit(
            "FAIL: undefended, no statistical classifier beat the "
            "exact-match baseline"
        )

    previous = -1
    for level in summary["levels"]:
        extra = (
            level["defended_bytes"] + level["chaff_bytes"]
            - level["base_bytes"]
        )
        permille = extra * 1000 // level["base_bytes"]
        print(f"  {level['name']}: byte overhead {permille} permille")
        if permille < previous:
            raise SystemExit(
                f"FAIL: byte overhead not monotone at {level['name']}"
            )
        previous = permille
    print("phase C OK: frontier shapes hold", flush=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default="infer_smoke",
        help="directory for checkpoints and JSON outputs",
    )
    parser.add_argument(
        "--out", default="infer_smoke.json",
        help="where to leave the frontier JSON (CI artifact)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-phase wall-clock budget in seconds",
    )
    args = parser.parse_args()

    workdir = os.path.abspath(args.workdir)
    os.makedirs(workdir, exist_ok=True)
    reference = phase_a(workdir, args.timeout)
    phase_b(workdir, reference, args.timeout)
    phase_c(reference)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(reference, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"infer smoke passed; frontier JSON at {args.out}")


if __name__ == "__main__":
    main()
