#!/usr/bin/env python3
"""The paper's §VII defense sketch, evaluated against its own attack.

    "…the client can opt for a different priority/order of object
    delivery every time, thereby confusing the adversary."

Per page load, the defended client shuffles the order in which it
requests the 8 emblem images (it knows the display mapping; the network
does not) and randomizes their RFC 7540 priorities.  The attack still
serializes transmissions and still identifies *sizes* — but the
temporal order it recovers is the shuffled wire order, not the user's
preference order.

Run:
    python examples/defense_priority_shuffle.py [trials]
"""

import sys

from repro.experiments import ablations


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    print(f"Running the full attack against vanilla and defended clients "
          f"({trials} sessions each)…\n")
    result = ablations.run_defense(trials=trials, seed=7)
    print(result.render())
    print("""
Reading the table:

* 'vs true preference'  — positional accuracy against the secret the
  adversary wants (the user's ranking).  The defense collapses it to
  near-chance.
* 'vs wire order'       — accuracy against the shuffled order actually
  on the network.  Still high: the attack itself works fine; it just
  recovers a decorrelated permutation.
* 'sizes identified'    — the size side-channel survives: the defense
  hides *order*, not object identity.  A page whose secret is which
  single object was fetched (rather than an order) is NOT protected.
""")


if __name__ == "__main__":
    main()
