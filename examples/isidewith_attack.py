#!/usr/bin/env python3
"""The full Table II evaluation: the attack across many volunteers.

Reproduces the paper's §V experiment — the adversary recovers the
political-party ranking of each simulated volunteer — and prints
per-object prediction accuracy in both of Table II's modes.

Run:
    python examples/isidewith_attack.py [sessions]

The paper used 100 sessions; the default here is 25 for a quick run.
"""

import sys

from repro.experiments import table2
from repro.experiments.table2 import COLUMNS, PAPER_SEQUENCE, PAPER_SINGLE


def main() -> None:
    sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 25

    print(f"Attacking {sessions} volunteer sessions "
          f"(paper: 100 over three months)…\n")
    result = table2.run(trials=sessions, seed=7)

    print(result.render())
    print()
    print("Paper reference values:")
    print("  one object at a time : " +
          "  ".join(f"{column}={PAPER_SINGLE[column]}%" for column in COLUMNS))
    print("  all objects at a time: " +
          "  ".join(f"{column}={PAPER_SEQUENCE[column]}%" for column in COLUMNS))
    print()
    print(f"Broken connections: {result.broken}/{result.trials}")
    print()
    print("Reading: single-object mode matches the paper's 100% row;")
    print("sequence mode starts high and declines for later images —")
    print("the jitter actuator's imprecision compounds across the burst,")
    print("exactly the degradation the paper reports (90% → 62-64%).")


if __name__ == "__main__":
    main()
