#!/usr/bin/env python3
"""§VII future work: the serialization attack against video streaming.

A DASH player prefetches several segments at once, so consecutive video
segments multiplex on the HTTP/2 connection and a passive observer
cannot read the bitrate ladder.  The same GET-spacing trick that broke
isidewith.com separates the segments — the per-segment quality sequence
(what the user watched, when their network degraded) leaks.

Run:
    python examples/streaming_attack.py [sessions]
"""

import sys

from repro.experiments import streaming_study


def main() -> None:
    sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    print(f"Streaming {sessions} simulated DASH sessions, passive vs "
          f"attacked…\n")
    result = streaming_study.run(trials=sessions, seed=7, segments=12)
    print(result.render())
    print("""
Reading: with the player's 3-deep prefetch pipeline, segments merge
into multi-hundred-KB blobs that straddle ladder rungs — the passive
observer recovers almost nothing.  A 0.9 s GET spacing (far below the
2 s segment cadence, so playback is unharmed) serializes the downloads
and the quality sequence reads right off the burst sizes.
""")

    # A one-session close-up.
    from repro.experiments.streaming_study import _run_session
    session, correct, finished = _run_session(
        0, seed=7, attacked=True, segments=10
    )
    print("One attacked session, segment by segment:")
    print(f"  true qualities: {' '.join(session.qualities)}")
    print(f"  segment bytes : {' '.join(str(s) for s in session.sizes)}")
    print(f"  recovered {correct}/{session.segment_count} "
          f"(session finished: {finished})")


if __name__ == "__main__":
    main()
