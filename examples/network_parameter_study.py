#!/usr/bin/env python3
"""The §IV study: how each network parameter affects multiplexing.

Walks the four knobs the paper examines — uniform delay (useless),
jitter (Table I), bandwidth limitation (Figure 5) and targeted drops
(§IV-D) — printing each experiment's table.

Run:
    python examples/network_parameter_study.py [trials]
"""

import sys

from repro.experiments import delay_ablation, fig5, fig6, table1


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 15

    print("=" * 70)
    print("§IV-A — uniform delay (the negative result)")
    print("=" * 70)
    result = delay_ablation.run(trials=trials, seed=7)
    print(result.render())
    print("""
Adding the same delay to every packet shifts all arrivals equally:
the inter-request gaps the server sees are identical, and so is the
multiplexing.  The adversary discards this knob.
""")

    print("=" * 70)
    print("§IV-B / Table I — jitter")
    print("=" * 70)
    result = table1.run(trials=trials, seed=7)
    print(result.render())
    print("""
Spacing the GETs serializes the object of interest more and more — but
past ~50 ms the long holds trigger TCP retransmissions, the server
serves duplicate copies of the retransmitted requests, and the extra
traffic re-intensifies multiplexing: the curve saturates (paper:
32→46→54→54%).
""")

    print("=" * 70)
    print("§IV-C / Figure 5 — bandwidth limitation")
    print("=" * 70)
    result = fig5.run(trials=trials, seed=7)
    print(result.render())
    print("""
The paper saw retransmissions fall with bandwidth and success peak at
800 Mbps (many higher-bandwidth 'successes' being retransmitted copies
of the object, not the object).  Our clean token-bucket gateway does
not reproduce those artifacts on this small page — see EXPERIMENTS.md —
but the duplicate-only column shows the confound the paper dissects.
""")

    print("=" * 70)
    print("§IV-D / Figure 6 — targeted packet drops → stream reset")
    print("=" * 70)
    result = fig6.run(trials=trials, seed=7)
    print(result.render())
    print("""
Dropping 80% of server→client application packets for 6 seconds makes
the client reset all streams; the server flushes its queues, the
client's timeouts back off, and the re-requested object of interest is
served single-threaded: ≈90% success (the paper's number).
""")


if __name__ == "__main__":
    main()
