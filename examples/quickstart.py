#!/usr/bin/env python3
"""Quickstart: run the paper's attack on one simulated survey session.

Builds the full testbed — client, compromised gateway, HTTP/2 server
hosting the isidewith.com replica — runs the four-phase attack of §V,
and prints what the adversary recovered next to the ground truth.

Run:
    python examples/quickstart.py [trial]
"""

import sys

from repro import AdversaryConfig, TrialConfig, VolunteerWorkload, run_trial
from repro.web.isidewith import HTML_OBJECT_ID


def main() -> None:
    trial = int(sys.argv[1]) if len(sys.argv) > 1 else 0

    workload = VolunteerWorkload(seed=7)
    print(f"Volunteer #{trial} takes the survey…")
    print(f"  true preference order: {', '.join(workload.party_order_for(trial))}")
    print()

    print("Running the attacked page load (jitter → throttle → drops →")
    print("stream reset → escalated jitter)…")
    outcome = run_trial(trial, workload, TrialConfig(adversary=AdversaryConfig()))
    print(f"  page load {'completed' if outcome.completed else 'BROKE'} "
          f"in {outcome.duration:.1f} simulated seconds")
    print(f"  attack triggered at the 6th GET "
          f"(t={outcome.adversary.trigger_time:.2f}s)")
    print(f"  client sent {outcome.browser.resets_sent} stream reset(s), "
          f"{outcome.client_retransmissions()} TCP retransmissions")
    print()

    analysis = outcome.analyze()

    html = analysis.single_object[HTML_OBJECT_ID]
    print("Object of interest #1 — the result HTML (9500 B):")
    print(f"  identified from encrypted traffic: {html.identified}")
    print(f"  served non-multiplexed (degree 0): {html.degree_zero}")
    print(f"  → attack {'SUCCEEDED' if html.success else 'failed'}")
    print()

    print("Recovered party order (from encrypted image sizes):")
    predicted = [p.replace("emblem-", "") for p in analysis.sequence_prediction]
    truth = [p.replace("emblem-", "") for p in analysis.sequence_truth]
    width = max(len(p) for p in truth) + 2
    print(f"  {'position':>8}  {'predicted':<{width}} {'truth':<{width}} ")
    correct = 0
    for position in range(len(truth)):
        guess = predicted[position] if position < len(predicted) else "—"
        mark = "✓" if guess == truth[position] else "✗"
        correct += guess == truth[position]
        print(f"  {position + 1:>8}  {guess:<{width}} {truth[position]:<{width}} {mark}")
    print(f"\n  {correct}/8 positions correct")


if __name__ == "__main__":
    main()
