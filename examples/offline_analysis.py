#!/usr/bin/env python3
"""The adversary's two-phase workflow: capture now, analyze later.

The paper's gateway recorded traffic with tshark and fed the pcap to
Python scripts afterwards.  Same split here: run the attacked session,
save the gateway capture to a JSON-lines trace, then reload the trace
cold and run the size-estimation + prediction pipeline on it — proving
the analysis needs nothing but the stored on-path observations.

Run:
    python examples/offline_analysis.py [trace.jsonl]
"""

import sys
import tempfile
from pathlib import Path

from repro import AdversaryConfig, TrialConfig, VolunteerWorkload, run_trial
from repro.core.estimator import SizeEstimator
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import SizePredictor
from repro.netsim.traceio import load_capture, save_capture


def main() -> None:
    trace_path = Path(
        sys.argv[1] if len(sys.argv) > 1
        else Path(tempfile.gettempdir()) / "isidewith_attack_trace.jsonl"
    )

    # ---- Phase 1: live capture at the gateway ------------------------
    print("Phase 1 — running the attacked session and capturing…")
    workload = VolunteerWorkload(seed=7)
    outcome = run_trial(0, workload, TrialConfig(adversary=AdversaryConfig()))
    count = save_capture(outcome.topology.middlebox.capture, trace_path)
    print(f"  saved {count} packet records to {trace_path}")
    truth = list(outcome.site.party_order)
    size_map = outcome.site.size_map()
    analysis_start = outcome.adversary.escalation_time

    # ---- Phase 2: cold offline analysis ------------------------------
    print("\nPhase 2 — reloading the trace and analyzing offline…")
    monitor = TrafficMonitor(load_capture(trace_path))
    print(f"  {len(monitor.get_requests())} GETs observed "
          f"(schedule had {len(outcome.site.schedule)})")
    estimates = SizeEstimator().estimate(
        monitor.response_packets(analysis_start)
    )
    print(f"  {len(estimates)} response bursts after the reset phase")

    predictor = SizePredictor(size_map)
    emblems = [f"emblem-{party}" for party in sorted(truth)]
    labelled = predictor.predict_sequence_assignment(estimates, emblems)
    predicted = [match.object_id.replace("emblem-", "")
                 for _, match in labelled]
    correct = sum(1 for a, b in zip(predicted, truth) if a == b)
    print(f"\nRecovered order : {predicted}")
    print(f"True order      : {truth}")
    print(f"{correct}/8 positions correct — entirely from the stored trace.")


if __name__ == "__main__":
    main()
