"""Benchmark configuration.

Each benchmark regenerates one paper table/figure and prints its rows.
Trial counts default to a quick profile; set ``REPRO_TRIALS`` (e.g. 100,
the paper's count) for full fidelity.
"""

import os

import pytest


def trials(default: int) -> int:
    """Trial count from the environment, or the quick default."""
    value = os.environ.get("REPRO_TRIALS")
    if value is None:
        return default
    return max(1, int(value))


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under the benchmark timer.

    Experiments are deterministic and heavy; pytest-benchmark's default
    calibration would re-run them dozens of times for no statistical
    gain.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
