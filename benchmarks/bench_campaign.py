"""Campaign benchmark: sessions/sec, worker scaling and peak memory.

Runs the analytic-mode campaign engine (:mod:`repro.campaign`) at a
population scale the per-trial experiments never reach and writes a
machine-readable ``BENCH_campaign.json`` next to the repository root.
The JSON embeds

* wall time and sessions/sec for each worker count (1, 2, and 4 on
  hosts with at least 4 cores), all over the *same* campaign config,
* a ``backends`` section comparing the scalar ``python`` backend with
  the vectorized ``fast`` backend serially — digest-identical by
  construction (asserted), with ``speedup_fast_vs_python`` gated at
  >= 10x,
* the digest of every run — bit-identical across worker counts and
  backends by construction, and asserted here,
* peak memory: the process RSS high-water mark (children included) and
  the tracemalloc Python-heap peak of a 2k- vs. a 32k-session serial
  campaign — the pair that demonstrates peak heap is bounded and
  independent of session count (asserted via an absolute ceiling),
* the host fingerprint (python, cpus, machine).

Runs two ways:

* ``python benchmarks/bench_campaign.py [--quick] [--json PATH]`` —
  standalone script (what the CI bench-campaign job runs);
* ``pytest benchmarks/bench_campaign.py`` — a scaled-down version of
  the same measurement as a test.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None or __package__ == "":
    # Script mode: make ``repro`` importable without PYTHONPATH=src.
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro import profiling
from repro.campaign import CampaignConfig, run_campaign

DEFAULT_SESSIONS = 100_000
QUICK_SESSIONS = 20_000
SHARD_SIZE = 2_000

#: Relative throughput the vectorized backend must reach over the
#: scalar one.  Both passes run serially under identical conditions,
#: so the ratio is robust to host speed (measured ~25-30x).
FAST_SPEEDUP_FLOOR = 10.0

#: Parallel-scaling floors, per worker count.  Only enforced when the
#: host actually has at least that many cores — oversubscribed workers
#: cannot scale and their numbers are recorded but never flagged.
SCALING_FLOOR = {2: 1.2, 4: 1.8}

#: Absolute Python-heap ceiling for the memory-independence check: the
#: 32k-session probe campaign must peak below this.  Streaming columnar
#: aggregation peaks in the low hundreds of KiB; retaining even ~100
#: bytes per session (one small dict) would exceed 3 MiB.
MEMORY_PEAK_LIMIT_KB = 2_048


def worker_counts() -> list:
    counts = [1, 2]
    if (os.cpu_count() or 1) >= 4:
        counts.append(4)
    return counts


def time_campaign(
    config: CampaignConfig, workers: int, backend: str = "python"
) -> dict:
    start = time.perf_counter()
    result = run_campaign(config, workers=workers, backend=backend)
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 3),
        "sessions_per_sec": round(config.sessions / wall, 1),
        "digest": result.digest(),
        "shards": result.shards,
    }


def measure_memory(seed: int) -> dict:
    """Python-heap peaks of a 2k- and a 16x-larger serial campaign.

    Both run in-process (workers=1) so tracemalloc sees every
    allocation the fold makes, and both use the *same shard count* —
    the large campaign packs 16x the sessions into each shard.
    Streaming columnar aggregation keeps no per-session state (each
    session folds into fixed-width integer arrays and is dropped), so
    the large campaign's heap peak stays in the low hundreds of KiB —
    transient garbage between gc passes, bounded, and asserted against
    an absolute ceiling rather than a noise-prone ratio.  O(sessions)
    aggregation (one retained object per session) would exceed the
    ceiling at this scale.
    """
    small = CampaignConfig(sessions=2_000, shard_size=500, seed=seed)
    large = CampaignConfig(sessions=32_000, shard_size=8_000, seed=seed)
    with profiling.traced_memory() as small_trace:
        run_campaign(small, workers=1)
    with profiling.traced_memory() as large_trace:
        run_campaign(large, workers=1)
    small_kb = small_trace["tracemalloc_peak_kb"]
    large_kb = large_trace["tracemalloc_peak_kb"]
    return {
        "peak_rss_kb": profiling.peak_rss_kb(include_children=True),
        "tracemalloc_small_kb": small_kb,
        "tracemalloc_large_kb": large_kb,
        "sessions_small": small.sessions,
        "sessions_large": large.sessions,
        "peak_limit_kb": MEMORY_PEAK_LIMIT_KB,
    }


def run_bench(sessions: int) -> dict:
    config = CampaignConfig(sessions=sessions, shard_size=SHARD_SIZE, seed=7)
    throughput = {
        str(workers): time_campaign(config, workers)
        for workers in worker_counts()
    }
    digests = {entry["digest"] for entry in throughput.values()}
    serial = throughput["1"]["sessions_per_sec"]
    # Worker scaling is only meaningful when every worker gets a core:
    # ``cpus`` rides along so check() can skip oversubscribed counts.
    scaling = {"cpus": os.cpu_count() or 1}
    scaling.update(
        {
            f"speedup_x{workers}": round(
                throughput[workers]["sessions_per_sec"] / serial, 2
            )
            for workers in throughput
            if workers != "1"
        }
    )
    backends = {
        "python": {
            "wall_s": throughput["1"]["wall_s"],
            "sessions_per_sec": serial,
            "digest": throughput["1"]["digest"],
        },
        "fast": time_campaign(config, workers=1, backend="fast"),
    }
    backends["fast"].pop("shards", None)
    backends["speedup_fast_vs_python"] = round(
        backends["fast"]["sessions_per_sec"] / serial, 1
    )
    backends["digest_identical"] = (
        backends["fast"]["digest"] == backends["python"]["digest"]
    )
    return {
        "bench": "campaign",
        "campaign": {
            "sessions": config.sessions,
            "shard_size": config.shard_size,
            "shards": config.shard_count,
            "seed": config.seed,
            "mode": config.mode,
        },
        "digest_identical_across_workers": len(digests) == 1,
        "digest": throughput["1"]["digest"],
        "throughput": throughput,
        "scaling": scaling,
        "backends": backends,
        "memory": measure_memory(seed=11),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }


def render_summary(payload: dict) -> str:
    lines = [f"campaign bench ({payload['campaign']['sessions']:,} sessions,"
             f" {payload['campaign']['shards']} shards)"]
    for workers, entry in sorted(payload["throughput"].items(), key=lambda
                                 item: int(item[0])):
        lines.append(
            f"  workers={workers}  {entry['wall_s']:7.2f} s"
            f"  {entry['sessions_per_sec']:>10,.0f} sessions/s"
        )
    backends = payload["backends"]
    lines.append(
        f"  fast backend {backends['fast']['sessions_per_sec']:>10,.0f}"
        f" sessions/s  ({backends['speedup_fast_vs_python']:.1f}x python,"
        f" digests {'match' if backends['digest_identical'] else 'DIFFER'})"
    )
    memory = payload["memory"]
    lines.append(
        f"  peak RSS {memory['peak_rss_kb']:,} KB; heap peak "
        f"{memory['tracemalloc_small_kb']:,.0f} KB "
        f"({memory['sessions_small']:,} sessions) -> "
        f"{memory['tracemalloc_large_kb']:,.0f} KB "
        f"({memory['sessions_large']:,} sessions, "
        f"limit {memory['peak_limit_kb']:,} KB)"
    )
    return "\n".join(lines)


def default_json_path() -> Path:
    return Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def write_json(payload: dict, path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def check(payload: dict) -> list:
    """Structural failures (empty when the bench is healthy)."""
    failures = []
    if not payload["digest_identical_across_workers"]:
        failures.append("digests differ across worker counts")
    backends = payload["backends"]
    if not backends["digest_identical"]:
        failures.append(
            "fast-backend digest differs from the python backend"
        )
    speedup = backends["speedup_fast_vs_python"]
    if speedup < FAST_SPEEDUP_FLOOR:
        failures.append(
            f"fast backend only {speedup:.1f}x over python (floor "
            f"{FAST_SPEEDUP_FLOOR:.0f}x)"
        )
    cpus = payload["scaling"]["cpus"]
    for workers, floor in SCALING_FLOOR.items():
        observed = payload["scaling"].get(f"speedup_x{workers}")
        if observed is not None and cpus >= workers and observed < floor:
            failures.append(
                f"x{workers} scaling {observed:.2f}x below the {floor:.1f}x "
                f"floor on a {cpus}-core host"
            )
    peak = payload["memory"]["tracemalloc_large_kb"]
    if peak > MEMORY_PEAK_LIMIT_KB:
        failures.append(
            f"heap peak {peak:,.0f} KB over a 32k-session shard exceeds "
            f"the {MEMORY_PEAK_LIMIT_KB:,} KB ceiling — aggregation is "
            "retaining per-session state"
        )
    return failures


def test_bench_campaign():
    payload = run_bench(QUICK_SESSIONS)
    path = default_json_path()
    write_json(payload, path)
    print()
    print(render_summary(payload))
    print(f"wrote {path}")

    assert check(payload) == []
    assert payload["throughput"]["1"]["sessions_per_sec"] > 0
    assert payload["backends"]["digest_identical"]
    assert payload["scaling"]["cpus"] >= 1
    parsed = json.loads(path.read_text())
    assert parsed["digest"] == payload["digest"]
    assert parsed["backends"]["speedup_fast_vs_python"] >= FAST_SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"{QUICK_SESSIONS:,} sessions instead of {DEFAULT_SESSIONS:,}",
    )
    parser.add_argument(
        "--sessions", type=int, default=None, help="explicit session count"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="output path (default: BENCH_campaign.json at the repo root)",
    )
    args = parser.parse_args(argv)

    sessions = args.sessions if args.sessions is not None else (
        QUICK_SESSIONS if args.quick else DEFAULT_SESSIONS
    )
    payload = run_bench(sessions)
    path = args.json if args.json is not None else default_json_path()
    write_json(payload, path)
    print(render_summary(payload))
    print(f"wrote {path}")

    failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
