"""E2 — baseline degree of multiplexing (paper §IV: HTML ≈98 %,
images 80–99 %, HTML un-multiplexed in 32 % of downloads)."""

from conftest import trials

from repro.experiments import baseline


def test_bench_baseline(run_once):
    result = run_once(baseline.run, trials=trials(25), seed=7)
    print()
    print(result.render())
    # Shape assertions: heavy multiplexing with a non-trivial clean tail.
    assert result.image_mean_degree > 0.6
    assert 5.0 <= result.html_not_multiplexed_pct <= 60.0
