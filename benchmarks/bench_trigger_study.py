"""E9 / §VII — learned attack triggering vs the fixed 6th-GET index.

Against cached-visitor sessions (the HTML slides to an earlier request
position), the fixed trigger misses; the k-NN trigger trained on the
adversary's own profiling runs recovers most of the accuracy."""

from conftest import trials

from repro.experiments import trigger_study


def test_bench_trigger_study(run_once):
    result = run_once(
        trigger_study.run,
        trials=trials(10),
        training_trials=max(8, trials(10)),
        seed=7,
    )
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    fixed = float(rows["fixed index (6th GET)"][1].rstrip("%"))
    learned = float(rows["k-NN classifier"][1].rstrip("%"))
    assert learned > fixed
