"""E12 / §VII — the attack against generated websites.

Sweeps page density and planted size collisions; identification degrades
when the §II size-uniqueness precondition is violated, and serialization
is harder when the target sits immediately inside a dense burst."""

from conftest import trials

from repro.experiments import generalization


def test_bench_generalization(run_once):
    result = run_once(generalization.run, trials=trials(6), seed=7)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    clean = float(rows["30 objects"][2].rstrip("%"))
    collided = float(
        rows["30 objects + 3 size collisions"][2].rstrip("%")
    )
    # Planting near-duplicate sizes violates the paper's precondition
    # and must not *improve* identification.
    assert collided <= clean
    # The attack retains signal on every profile.
    for row in result.rows_data:
        assert float(row[3].rstrip("%")) >= 15.0
