"""E13 — closed-world fingerprinting over equal-total pages.

Multiplexing lowers classification accuracy only moderately (consistent
with the paper's reference [24]); the serialization attack pushes it
near-perfect by exposing per-object sizes."""

from conftest import trials

from repro.experiments import fingerprint_study


def test_bench_fingerprint(run_once):
    result = run_once(
        fingerprint_study.run,
        pages=6,
        train_visits=3,
        test_visits=2,
        seed=7,
    )
    print()
    print(result.render())
    rows = {row[0]: float(row[1].rstrip("%")) for row in result.rows_data}
    attacked = rows["attacked (serialized)"]
    passive = rows["passive (multiplexed)"]
    assert attacked >= passive
    assert attacked >= 75.0
    # Both sit well above chance — H2 multiplexing alone is not a
    # fingerprinting defense (the paper's premise).
    assert passive > result.chance_pct
