"""E5 / §IV-D (Figure 6) — targeted drops forcing an HTTP/2 stream
reset.  Paper: ≈90 % success for the object of interest at an 80 % drop
rate; higher rates break the connection."""

from conftest import trials

from repro.experiments import fig6


def test_bench_fig6(run_once):
    result = run_once(fig6.run, trials=trials(15), seed=7)
    print()
    print(result.render())
    by_rate = {row.drop_rate: row for row in result.rows_data}
    # The paper's operating point: high success at the 80% drop rate.
    assert by_rate[0.8].success_pct >= 70.0
    # Resets were actually forced.
    assert by_rate[0.8].resets_observed >= by_rate[0.8].trials
