"""E1 / Figure 1 — object-size estimation: sequential vs multiplexed."""

from conftest import trials

from repro.experiments import fig1


def test_bench_fig1(run_once):
    result = run_once(fig1.run, seed=7)
    print()
    print(result.render())
    assert result.sequential.both_identified
    assert not result.pipelined.both_identified
