"""E11 / §VII — inference from partly multiplexed objects.

Subset-sum explanation of merged bursts recovers emblems that exact
size matching misses at a mild jitter setting."""

from conftest import trials

from repro.experiments import partial_mux


def test_bench_partial_mux(run_once):
    result = run_once(partial_mux.run, trials=trials(8), seed=7)
    print()
    print(result.render())
    rows = {row[0]: float(row[1].rstrip("%")) for row in result.rows_data}
    assert rows["+ subset-sum blob explanation"] >= \
        rows["exact size match only"]
