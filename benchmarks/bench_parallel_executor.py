"""Serial vs multiprocess trial execution on a Table I slice.

Runs the same seeded jitter sweep twice — ``workers=1`` (in-process)
and ``workers=N`` (spawn pool) — and checks the determinism contract:
the rendered tables must be byte-identical.  Wall times and the
speedup are printed; the speedup itself is only *asserted* when the
host has enough cores to make the claim meaningful (set
``REPRO_BENCH_ASSERT_SPEEDUP=1`` to force the assertion).

Trial count defaults to the quick profile; set ``REPRO_TRIALS=20`` to
reproduce the acceptance configuration.
"""

import os
import time

from conftest import trials

from repro.experiments import table1
from repro.experiments.executor import resolve_workers

#: Table I slice used for the comparison (baseline + two jitter levels).
DELAYS = (0.0, 0.050, 0.100)


def _parallel_workers() -> int:
    """Worker count for the parallel leg: REPRO_WORKERS, else all cores."""
    if os.environ.get("REPRO_WORKERS"):
        return resolve_workers(None)
    return max(2, os.cpu_count() or 2)


def test_bench_parallel_executor():
    count = trials(8)
    workers = _parallel_workers()

    start = time.perf_counter()
    serial = table1.run(trials=count, seed=7, delays=DELAYS, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = table1.run(trials=count, seed=7, delays=DELAYS,
                          workers=workers)
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print()
    print(serial.render())
    print(f"serial   (workers=1): {serial_seconds:6.2f}s")
    print(f"parallel (workers={workers}): {parallel_seconds:6.2f}s")
    print(f"speedup: {speedup:.2f}x over {count} trials x {len(DELAYS)} delays")

    # The determinism contract holds on any machine.
    assert serial.render() == parallel.render()

    # The speedup claim only makes sense with real parallel hardware.
    cores = os.cpu_count() or 1
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1" or (
        cores >= 4 and workers >= 4 and count >= 20
    ):
        assert speedup >= 2.5, (
            f"expected >=2.5x with {workers} workers on {cores} cores, "
            f"got {speedup:.2f}x"
        )
