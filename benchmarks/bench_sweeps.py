"""E14 — sensitivity sweeps around the paper's design choices.

The paper fixed 50 ms jitter / 6 s drops / 80 ms escalated spacing;
these sweeps map the neighbourhoods of those knobs."""

from conftest import trials

from repro.experiments import sweeps


def test_bench_jitter_curve(run_once):
    result = run_once(
        sweeps.jitter_curve, trials=trials(8), seed=7,
        spacings_ms=(0, 25, 50, 75, 100),
    )
    print()
    print(result.render())
    # Serialization improves from baseline to mid-range.
    assert result.primary[2] > result.primary[0]
    # Retransmissions increase monotonically in the spacing.
    assert result.secondary == sorted(result.secondary)


def test_bench_drop_duration(run_once):
    result = run_once(sweeps.drop_duration, trials=trials(8), seed=7)
    print()
    print(result.render())
    # Longer windows force resets; short ones may not.
    assert result.secondary[-2] >= result.secondary[0]


def test_bench_escalation_curve(run_once):
    result = run_once(sweeps.escalation_curve, trials=trials(8), seed=7)
    print()
    print(result.render())
    by_spacing = dict(zip(result.xs, result.primary))
    # The paper's 80 ms choice is at or near the sweep's optimum.
    assert by_spacing[80] >= max(result.primary) - 1.0
