"""E3 / Table I — effect of jitter on HTTP/2 multiplexing.

Paper: not-multiplexed 32/46/54/54 %, retransmissions +0/33/130/194 %.
Our testbed: same shape (monotone rise saturating past 50 ms;
retransmissions strictly increasing), higher absolute levels.
"""

from conftest import trials

from repro.experiments import table1


def test_bench_table1(run_once):
    result = run_once(table1.run, trials=trials(25), seed=7)
    print()
    print(result.render())
    rows = result.rows_data
    # Shape: serialization improves with jitter, then saturates.
    assert rows[0].not_multiplexed_pct < rows[2].not_multiplexed_pct
    assert rows[3].not_multiplexed_pct <= rows[2].not_multiplexed_pct + 15
    # Shape: retransmissions grow monotonically with jitter.
    counts = [row.retransmissions for row in rows]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]
