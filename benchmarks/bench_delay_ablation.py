"""E7 / §IV-A — uniform delay is useless (the paper's negative result)."""

from conftest import trials

from repro.experiments import delay_ablation


def test_bench_delay_ablation(run_once):
    result = run_once(delay_ablation.run, trials=trials(10), seed=7)
    print()
    print(result.render())
    rows = result.rows_data
    base = rows[0]
    for row in rows[1:]:
        # Inter-GET gaps at the gateway are unchanged by uniform delay.
        assert row.mean_get_gap_ms == base.mean_get_gap_ms or \
            abs(row.mean_get_gap_ms - base.mean_get_gap_ms) / \
            base.mean_get_gap_ms < 0.05
        # Multiplexing is unchanged.
        assert abs(row.not_multiplexed_pct - base.not_multiplexed_pct) <= 15
