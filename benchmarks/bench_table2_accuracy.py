"""E6 / Table II — end-to-end prediction accuracy.

Paper: single-object 100 % for all nine objects; sequence mode
HTML 90 %, I1..I8 = 90/85/81/80/62/64/78/64 % (declining tail).
"""

from conftest import trials

from repro.experiments import table2


def test_bench_table2(run_once):
    result = run_once(table2.run, trials=trials(20), seed=7)
    print()
    print(result.render())
    print(f"broken connections: {result.broken}/{result.trials}")
    # Single-object mode: near-perfect on the HTML and early images.
    assert result.single_pct("HTML") >= 90.0
    assert result.single_pct("I1") >= 80.0
    # Sequence mode: strong early, declining tail (the paper's shape).
    assert result.sequence_pct("I1") >= 60.0
    early = sum(result.sequence_pct(f"I{i}") for i in (1, 2, 3, 4)) / 4
    late = sum(result.sequence_pct(f"I{i}") for i in (5, 6, 7, 8)) / 4
    assert early >= late
