"""Hot-path benchmark: single Table I and Fig. 6 reference trials.

Times the two canonical single-trial slices
(:mod:`repro.experiments.hotpath`) and writes a machine-readable
``BENCH_hotpath.json`` next to the repository root.  The JSON embeds

* min/mean wall time per slice over a few repetitions,
* the profiler snapshot of one profiled pass (event/packet/frame
  counters, phase timers, HPACK cache hit rates),
* peak memory (process RSS high-water mark plus the tracemalloc
  Python-heap peak of one untimed pass),
* the checked-in pre-optimization reference timings and the implied
  speedup.

Runs two ways:

* ``python benchmarks/bench_hotpath.py [--quick] [--json PATH]`` —
  standalone script (what the CI smoke job runs);
* ``pytest benchmarks/bench_hotpath.py`` — the same measurement as a
  test, honouring ``REPRO_TRIALS`` via ``conftest.trials``.

Wall-clock comparisons against the checked-in reference only hold on
comparable hardware, so the ``>= 1.5x`` speedup assertion fires only on
hosts with at least 4 cores (or when ``REPRO_BENCH_ASSERT_SPEEDUP=1``),
mirroring ``bench_parallel_executor.py``.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None or __package__ == "":
    # Script mode: make ``repro`` importable without PYTHONPATH=src.
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.experiments.hotpath import KINDS, profile_reference, run_reference_trial

#: Pre-optimization single-trial wall times (seconds), measured at the
#: commit preceding this benchmark's introduction on the development
#: machine (min of 5 warm repetitions).  The trajectory baseline the
#: speedup figures in ``BENCH_hotpath.json`` are computed against.
REFERENCE = {
    "commit": "1e786f8",
    "table1_s": 0.1341,
    "fig6_s": 0.1943,
}

#: Acceptance target: optimized single-trial time vs. the reference.
TARGET_SPEEDUP = 1.5

DEFAULT_REPS = 5
QUICK_REPS = 2


def time_slice(kind: str, reps: int) -> dict:
    """Wall times for ``reps`` runs of one reference slice (after a
    warm-up run that also primes the HPACK caches)."""
    run_reference_trial(kind)
    samples = []
    for trial in range(reps):
        start = time.perf_counter()
        run_reference_trial(kind, trial=trial)
        samples.append(time.perf_counter() - start)
    return {
        "min_s": round(min(samples), 6),
        "mean_s": round(sum(samples) / len(samples), 6),
        "samples_s": [round(sample, 6) for sample in samples],
    }


def measure_memory() -> dict:
    """Peak-memory figures for one pass over both reference slices.

    Runs *after* the timed repetitions so tracemalloc's allocation
    overhead never contaminates the wall-clock samples.  RSS is the
    process high-water mark (monotone over the whole bench run);
    ``tracemalloc_peak_kb`` is the Python-heap peak of this pass alone
    — the number that bounds a single trial's live objects.
    """
    from repro import profiling

    with profiling.traced_memory() as traced:
        for kind in KINDS:
            run_reference_trial(kind)
    return {
        "peak_rss_kb": profiling.peak_rss_kb(),
        "tracemalloc_peak_kb": traced["tracemalloc_peak_kb"],
    }


def run_bench(reps: int) -> dict:
    """Measure both slices plus one profiled pass; returns the payload
    written to ``BENCH_hotpath.json``."""
    timings = {kind: time_slice(kind, reps) for kind in KINDS}
    profiler, _ = profile_reference()
    speedups = {
        kind: round(REFERENCE[f"{kind}_s"] / timings[kind]["min_s"], 2)
        for kind in KINDS
    }
    return {
        "bench": "hotpath",
        "reps": reps,
        "timings": timings,
        "reference": dict(REFERENCE),
        "speedup_vs_reference": speedups,
        "target_speedup": TARGET_SPEEDUP,
        "profile": profiler.snapshot(),
        "memory": measure_memory(),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }


def render_summary(payload: dict) -> str:
    lines = ["hot-path bench"]
    for kind in KINDS:
        timing = payload["timings"][kind]
        lines.append(
            f"  {kind:<8} min {timing['min_s'] * 1000.0:7.1f} ms"
            f"  (reference {payload['reference'][f'{kind}_s'] * 1000.0:7.1f} ms,"
            f" {payload['speedup_vs_reference'][kind]:.2f}x)"
        )
    return "\n".join(lines)


def speedup_assertable() -> bool:
    """Whether wall-clock speedup claims are meaningful on this host."""
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        return True
    return (os.cpu_count() or 1) >= 4


def default_json_path() -> Path:
    return Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def write_json(payload: dict, path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_bench_hotpath():
    from conftest import trials

    reps = trials(DEFAULT_REPS)
    payload = run_bench(reps)
    path = default_json_path()
    write_json(payload, path)
    print()
    print(render_summary(payload))
    print(f"wrote {path}")

    # Structural checks hold on any machine: both slices measured, the
    # profiled pass saw real work, and the JSON round-trips.
    assert set(payload["timings"]) == set(KINDS)
    counters = payload["profile"]["counters"]
    assert counters["sim.events"] > 0
    assert counters["net.packets"] > 0
    assert payload["memory"]["peak_rss_kb"] > 0
    assert payload["memory"]["tracemalloc_peak_kb"] > 0
    parsed = json.loads(path.read_text())
    assert parsed["speedup_vs_reference"].keys() == {"table1", "fig6"}

    # The wall-clock claim needs comparable hardware.
    if speedup_assertable():
        speedup = payload["speedup_vs_reference"]["table1"]
        assert speedup >= TARGET_SPEEDUP, (
            f"expected >={TARGET_SPEEDUP}x over the {REFERENCE['commit']} "
            f"reference on the Table I slice, got {speedup:.2f}x"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"fewer repetitions ({QUICK_REPS} instead of {DEFAULT_REPS})",
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="explicit repetition count"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="output path (default: BENCH_hotpath.json at the repo root)",
    )
    args = parser.parse_args(argv)

    reps = args.reps if args.reps is not None else (
        QUICK_REPS if args.quick else DEFAULT_REPS
    )
    payload = run_bench(reps)
    path = args.json if args.json is not None else default_json_path()
    write_json(payload, path)
    print(render_summary(payload))
    print(f"wrote {path}")

    if speedup_assertable():
        speedup = payload["speedup_vs_reference"]["table1"]
        if speedup < TARGET_SPEEDUP:
            print(
                f"WARNING: table1 speedup {speedup:.2f}x below the "
                f"{TARGET_SPEEDUP}x target (reference machine differs?)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
