"""Hot-path benchmark: single Table I and Fig. 6 reference trials.

Times the two canonical single-trial slices
(:mod:`repro.experiments.hotpath`) and writes a machine-readable
``BENCH_hotpath.json`` next to the repository root.  The JSON embeds

* min/mean wall time per slice over a few repetitions, for both the
  scalar ``python`` backend and the batching ``fast`` backend,
* a ``fastpath`` section (fast-vs-python speedup per slice plus the
  fast pass's ``sim.batch_runs`` / ``sim.batched_events`` counters),
* the profiler snapshot of one profiled pass (event/packet/frame
  counters, phase timers, HPACK cache hit rates),
* peak memory (process RSS high-water mark plus the tracemalloc
  Python-heap peak of one untimed pass),
* the checked-in pre-optimization reference timings and the implied
  speedup.

Runs two ways:

* ``python benchmarks/bench_hotpath.py [--quick] [--json PATH]`` —
  standalone script (what the CI smoke job runs);
* ``pytest benchmarks/bench_hotpath.py`` — the same measurement as a
  test, honouring ``REPRO_TRIALS`` via ``conftest.trials``.

Wall-clock comparisons against the checked-in reference only hold on
comparable hardware, so the per-backend speedup assertions (see
``TARGET_SPEEDUP``) fire only on hosts with at least 4 cores (or when
``REPRO_BENCH_ASSERT_SPEEDUP=1``), mirroring
``bench_parallel_executor.py``.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None or __package__ == "":
    # Script mode: make ``repro`` importable without PYTHONPATH=src.
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.experiments.hotpath import KINDS, profile_reference, run_reference_trial
from repro.fastpath import BACKEND_ENV, BACKENDS
from repro.transport import TRANSPORT_ENV, TRANSPORTS

#: Reference single-trial wall times (seconds): the *python* backend at
#: the commit this baseline was rebased to, measured on the development
#: machine (min of 5 warm repetitions).  Rebased from the original
#: 1e786f8 pre-optimization numbers so backend speedups are measured
#: against the real current baseline, not a two-generations-old one.
REFERENCE = {
    "commit": "1abc03a",
    "table1_s": 0.1353,
    "fig6_s": 0.1884,
}

#: Acceptance target per backend: single-trial time vs. the reference,
#: as regression gates (>= 0.9x of the rebased baseline each).  Event-run
#: batching keeps the fast backend at parity on these slices (measured
#: 0.9x-1.1x of python, within host noise): ~27% of events take the
#: batch path, but per-event cost is dominated by protocol logic
#: (TCP/H2 processing), not dispatch.  The order-of-magnitude fast-
#: backend wins live in the analytic campaign kernel — see
#: BENCH_campaign.json.
TARGET_SPEEDUP = {
    "python": 0.9,
    "fast": 0.9,
}

DEFAULT_REPS = 5
QUICK_REPS = 2


def time_slice(kind: str, reps: int) -> dict:
    """Wall times for ``reps`` runs of one reference slice (after a
    warm-up run that also primes the HPACK caches)."""
    run_reference_trial(kind)
    samples = []
    for trial in range(reps):
        start = time.perf_counter()
        run_reference_trial(kind, trial=trial)
        samples.append(time.perf_counter() - start)
    return {
        "min_s": round(min(samples), 6),
        "mean_s": round(sum(samples) / len(samples), 6),
        "samples_s": [round(sample, 6) for sample in samples],
    }


def measure_memory() -> dict:
    """Peak-memory figures for one pass over both reference slices.

    Runs *after* the timed repetitions so tracemalloc's allocation
    overhead never contaminates the wall-clock samples.  RSS is the
    process high-water mark (monotone over the whole bench run);
    ``tracemalloc_peak_kb`` is the Python-heap peak of this pass alone
    — the number that bounds a single trial's live objects.
    """
    from repro import profiling

    with profiling.traced_memory() as traced:
        for kind in KINDS:
            run_reference_trial(kind)
    return {
        "peak_rss_kb": profiling.peak_rss_kb(),
        "tracemalloc_peak_kb": traced["tracemalloc_peak_kb"],
    }


class _backend_env:
    """Temporarily pin ``REPRO_BACKEND`` for one measurement pass.

    Simulators resolve the backend from the environment at construction
    time, so flipping the variable between passes is enough to measure
    the same slice under both dispatch strategies in one process.
    """

    def __init__(self, backend: str) -> None:
        self._backend = backend
        self._saved = None

    def __enter__(self):
        self._saved = os.environ.get(BACKEND_ENV)
        os.environ[BACKEND_ENV] = self._backend
        return self

    def __exit__(self, *exc):
        if self._saved is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = self._saved
        return False


class _transport_env:
    """Temporarily pin ``REPRO_TRANSPORT`` for one measurement pass.

    The reference slices build their stack through
    :class:`~repro.experiments.harness.TrialConfig`'s env-resolved
    transport, so flipping the variable times the same workload over
    TCP and the QUIC-like datagram transport in one process.
    """

    def __init__(self, transport: str) -> None:
        self._transport = transport
        self._saved = None

    def __enter__(self):
        self._saved = os.environ.get(TRANSPORT_ENV)
        os.environ[TRANSPORT_ENV] = self._transport
        return self

    def __exit__(self, *exc):
        if self._saved is None:
            os.environ.pop(TRANSPORT_ENV, None)
        else:
            os.environ[TRANSPORT_ENV] = self._saved
        return False


def run_bench(reps: int) -> dict:
    """Measure both slices under both backends plus one profiled pass
    per backend; returns the payload written to ``BENCH_hotpath.json``."""
    timings = {}
    for backend in BACKENDS:
        with _backend_env(backend):
            timings[backend] = {kind: time_slice(kind, reps) for kind in KINDS}
    with _backend_env("python"):
        profiler, _ = profile_reference()
    with _backend_env("fast"):
        fast_profiler, _ = profile_reference()
    speedups = {
        backend: {
            kind: round(REFERENCE[f"{kind}_s"] / timings[backend][kind]["min_s"], 2)
            for kind in KINDS
        }
        for backend in BACKENDS
    }
    # Per-transport timings of the same slices (python backend): how
    # much the QUIC-like per-stream recovery machinery costs relative
    # to the TCP byte stream on identical workloads.
    transport_timings = {}
    for transport in TRANSPORTS:
        with _transport_env(transport):
            transport_timings[transport] = {
                kind: time_slice(kind, reps) for kind in KINDS
            }
    transports = {
        "timings": transport_timings,
        "slowdown_quic_vs_tcp": {
            kind: round(
                transport_timings["quic"][kind]["min_s"]
                / transport_timings["tcp"][kind]["min_s"],
                2,
            )
            for kind in KINDS
        },
    }
    fast_counters = fast_profiler.snapshot()["counters"]
    events = fast_counters.get("sim.events", 0)
    batched = fast_counters.get("sim.batched_events", 0)
    fastpath = {
        "speedup_fast_vs_python": {
            kind: round(
                timings["python"][kind]["min_s"]
                / timings["fast"][kind]["min_s"],
                2,
            )
            for kind in KINDS
        },
        "batch_runs": fast_counters.get("sim.batch_runs", 0),
        "batched_events": batched,
        "events": events,
        "batched_event_fraction": round(batched / events, 4) if events else 0.0,
    }
    return {
        "bench": "hotpath",
        "reps": reps,
        "timings": timings,
        "reference": dict(REFERENCE),
        "speedup_vs_reference": speedups,
        "target_speedup": dict(TARGET_SPEEDUP),
        "fastpath": fastpath,
        "transports": transports,
        "profile": profiler.snapshot(),
        "memory": measure_memory(),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }


def render_summary(payload: dict) -> str:
    lines = ["hot-path bench"]
    for backend in BACKENDS:
        for kind in KINDS:
            timing = payload["timings"][backend][kind]
            lines.append(
                f"  {backend:<7} {kind:<8} min {timing['min_s'] * 1000.0:7.1f} ms"
                f"  (reference {payload['reference'][f'{kind}_s'] * 1000.0:7.1f} ms,"
                f" {payload['speedup_vs_reference'][backend][kind]:.2f}x)"
            )
    fastpath = payload["fastpath"]
    lines.append(
        f"  fast vs python: "
        + ", ".join(
            f"{kind} {fastpath['speedup_fast_vs_python'][kind]:.2f}x"
            for kind in KINDS
        )
        + f"  ({fastpath['batched_events']}/{fastpath['events']} events"
        f" in {fastpath['batch_runs']} batch runs)"
    )
    transports = payload["transports"]
    lines.append(
        "  quic vs tcp:    "
        + ", ".join(
            f"{kind} {transports['slowdown_quic_vs_tcp'][kind]:.2f}x"
            for kind in KINDS
        )
        + "  (transport slowdown, python backend)"
    )
    return "\n".join(lines)


def speedup_assertable() -> bool:
    """Whether wall-clock speedup claims are meaningful on this host."""
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        return True
    return (os.cpu_count() or 1) >= 4


def default_json_path() -> Path:
    return Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def write_json(payload: dict, path: Path) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_bench_hotpath():
    from conftest import trials

    reps = trials(DEFAULT_REPS)
    payload = run_bench(reps)
    path = default_json_path()
    write_json(payload, path)
    print()
    print(render_summary(payload))
    print(f"wrote {path}")

    # Structural checks hold on any machine: both backends and both
    # slices measured, the profiled pass saw real work, the fast pass
    # actually exercised the batch path, and the JSON round-trips.
    assert set(payload["timings"]) == set(BACKENDS)
    for backend in BACKENDS:
        assert set(payload["timings"][backend]) == set(KINDS)
    counters = payload["profile"]["counters"]
    assert counters["sim.events"] > 0
    assert counters["net.packets"] > 0
    assert payload["fastpath"]["batch_runs"] > 0
    assert payload["fastpath"]["batched_events"] > 0
    assert payload["memory"]["peak_rss_kb"] > 0
    assert payload["memory"]["tracemalloc_peak_kb"] > 0
    parsed = json.loads(path.read_text())
    assert parsed["speedup_vs_reference"].keys() == set(BACKENDS)
    assert parsed["fastpath"]["speedup_fast_vs_python"].keys() == {
        "table1", "fig6"
    }
    assert set(payload["transports"]["timings"]) == set(TRANSPORTS)
    for transport in TRANSPORTS:
        assert set(payload["transports"]["timings"][transport]) == set(KINDS)
        for kind in KINDS:
            assert payload["transports"]["timings"][transport][kind]["min_s"] > 0

    # The wall-clock claims need comparable hardware.
    if speedup_assertable():
        for backend in BACKENDS:
            speedup = payload["speedup_vs_reference"][backend]["table1"]
            assert speedup >= TARGET_SPEEDUP[backend], (
                f"expected {backend} backend >={TARGET_SPEEDUP[backend]}x "
                f"over the {REFERENCE['commit']} reference on the Table I "
                f"slice, got {speedup:.2f}x"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"fewer repetitions ({QUICK_REPS} instead of {DEFAULT_REPS})",
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="explicit repetition count"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="output path (default: BENCH_hotpath.json at the repo root)",
    )
    args = parser.parse_args(argv)

    reps = args.reps if args.reps is not None else (
        QUICK_REPS if args.quick else DEFAULT_REPS
    )
    payload = run_bench(reps)
    path = args.json if args.json is not None else default_json_path()
    write_json(payload, path)
    print(render_summary(payload))
    print(f"wrote {path}")

    if speedup_assertable():
        status = 0
        for backend in BACKENDS:
            speedup = payload["speedup_vs_reference"][backend]["table1"]
            if speedup < TARGET_SPEEDUP[backend]:
                print(
                    f"WARNING: {backend} table1 speedup {speedup:.2f}x below "
                    f"the {TARGET_SPEEDUP[backend]}x target (reference "
                    f"machine differs?)",
                    file=sys.stderr,
                )
                status = 1
        return status
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
