"""E8 — ablations: the quirk, actuator precision, scheduler choice,
the §VII defense, and the HTTP/1.1 baseline."""

from conftest import trials

from repro.experiments import ablations


def test_bench_quirk(run_once):
    result = run_once(ablations.run_quirk, trials=trials(10), seed=7)
    print()
    print(result.render())


def test_bench_actuator(run_once):
    result = run_once(ablations.run_actuator, trials=trials(8), seed=7)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    ideal = float(rows["ideal (no noise)"][2].split("/")[0])
    real = float(rows["realistic (tc/netem)"][2].split("/")[0])
    # A perfect actuator recovers at least as much of the sequence.
    assert ideal >= real


def test_bench_scheduler(run_once):
    result = run_once(ablations.run_scheduler, trials=trials(8), seed=7)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    fifo = float(rows["FIFO (sequential)"][1].rstrip("%"))
    rr = float(rows["round-robin (multi-threaded)"][1].rstrip("%"))
    # A FIFO server never multiplexes: passive privacy gone.
    assert fifo >= rr


def test_bench_defense(run_once):
    result = run_once(ablations.run_defense, trials=trials(8), seed=7)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    vanilla_truth = float(rows["vanilla"][1].rstrip("%"))
    defended_truth = float(rows["defended (shuffled)"][1].rstrip("%"))
    # Randomizing the request order hides the true preference order.
    assert defended_truth < vanilla_truth


def test_bench_h1_baseline(run_once):
    result = run_once(ablations.run_h1_baseline, trials=trials(5), seed=7)
    print()
    print(result.render())


def test_bench_push_defense(run_once):
    result = run_once(ablations.run_push_defense, trials=trials(6), seed=7)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    vanilla = float(rows["vanilla"][1].rstrip("%"))
    defended = float(rows["push-defended"][1].rstrip("%"))
    assert defended < vanilla


def test_bench_success_accounting(run_once):
    result = run_once(
        ablations.run_success_accounting, trials=trials(10), seed=7
    )
    print()
    print(result.render())
    rows = {row[0]: float(row[1].rstrip("%")) for row in result.rows_data}
    loose = rows["identified (size match alone)"]
    papers = rows["identified + any serving clean (paper's count)"]
    strict = rows["identified + original serving clean (strict)"]
    assert loose >= papers >= strict


def test_bench_tcp_variants(run_once):
    result = run_once(ablations.run_tcp_variants, trials=trials(6), seed=7)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    # SACK repairs holes without resending everything.
    assert int(rows["reno + sack"][2]) <= int(rows["reno"][2])
    assert int(rows["cubic + sack"][2]) <= int(rows["cubic"][2])
    # The attack keeps a majority success rate on every stack.
    for row in result.rows_data:
        assert float(row[1].rstrip("%")) >= 50.0
