"""E10 / §VII — the serialization attack against adaptive streaming.

The player's prefetch pipelining multiplexes consecutive video
segments; a passive observer misreads the bitrate ladder, the attacked
observer recovers the quality sequence."""

from conftest import trials

from repro.experiments import streaming_study


def test_bench_streaming(run_once):
    result = run_once(
        streaming_study.run, trials=trials(5), seed=7, segments=12
    )
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows_data}
    passive = float(rows["passive"][1].rstrip("%"))
    attacked = float(rows["attacked (GET spacing)"][1].rstrip("%"))
    assert attacked > passive + 30.0
    assert attacked >= 70.0
