"""The reproduction scorecard: every headline paper number vs measured,
with a per-row shape verdict.  The whole reproduction in one table."""

from conftest import trials

from repro.experiments import scorecard


def test_bench_scorecard(run_once):
    card = run_once(scorecard.run, trials=trials(12), seed=7)
    print()
    print(card.render())
    assert card.all_shapes_hold
