"""The reproduction scorecard: every headline paper number vs measured,
with a per-row shape verdict.  The whole reproduction in one table.

Besides the rendered table, the run writes ``BENCH_scorecard.json`` at
the repo root — per-experiment wall time plus every row's measured
value — so CI and tooling can diff reproduction health across runs.
"""

import os
from pathlib import Path

from conftest import trials

from repro.experiments import scorecard

#: Machine-readable scorecard dropped at the repo root (next to
#: pyproject.toml); override the location with REPRO_SCORECARD_JSON.
SCORECARD_JSON = Path(
    os.environ.get(
        "REPRO_SCORECARD_JSON",
        Path(__file__).resolve().parent.parent / "BENCH_scorecard.json",
    )
)


def test_bench_scorecard(run_once):
    card = run_once(scorecard.run, trials=trials(12), seed=7)
    print()
    print(card.render())
    SCORECARD_JSON.write_text(card.to_json() + "\n", encoding="utf-8")
    print(f"wrote {SCORECARD_JSON}")
    assert card.all_shapes_hold
