"""E4 / Figure 5 — effect of bandwidth limitation.

The paper's curves (retransmissions falling with bandwidth, success
peaking at 800 Mbps) stem from gateway artifacts our clean token-bucket
does not have; EXPERIMENTS.md discusses the divergence.  The benchmark
reports the same quantities plus the duplicate-only success column —
the confound the paper dissects, which our ground truth isolates.
"""

from conftest import trials

from repro.experiments import fig5


def test_bench_fig5(run_once):
    result = run_once(fig5.run, trials=trials(15), seed=7)
    print()
    print(result.render())
    rows = result.rows_data
    assert len(rows) == 5
    # The attack's success criterion stays meaningful at all rates.
    assert all(0.0 <= row.success_pct <= 100.0 for row in rows)
    # Duplicate-only successes never exceed total successes.
    assert all(
        row.duplicate_only_successes <= row.successes for row in rows
    )
